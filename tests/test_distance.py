"""Unit tests for the distance kernels."""

import numpy as np
import pytest

from repro.ann.distance import (
    DistanceMetric,
    distance,
    distances_to_query,
    pairwise_distances,
)


@pytest.fixture()
def vectors(rng):
    return rng.normal(size=(20, 8)).astype(np.float32)


class TestDistancesToQuery:
    def test_euclidean_matches_numpy(self, vectors):
        q = vectors[0]
        d = distances_to_query(vectors, q, DistanceMetric.EUCLIDEAN)
        ref = ((vectors - q) ** 2).sum(axis=1)
        assert np.allclose(d, ref, rtol=1e-5)

    def test_euclidean_self_distance_zero(self, vectors):
        d = distances_to_query(vectors, vectors[3], DistanceMetric.EUCLIDEAN)
        assert d[3] == pytest.approx(0.0, abs=1e-5)

    def test_inner_product_is_negated(self, vectors):
        q = vectors[1]
        d = distances_to_query(vectors, q, DistanceMetric.INNER_PRODUCT)
        assert np.allclose(d, -(vectors @ q), rtol=1e-5)

    def test_angular_range(self, vectors):
        d = distances_to_query(vectors, vectors[0], DistanceMetric.ANGULAR)
        assert np.all(d >= -1e-5)
        assert np.all(d <= 2.0 + 1e-5)
        assert d[0] == pytest.approx(0.0, abs=1e-5)

    def test_angular_scale_invariant(self, vectors):
        q = vectors[0]
        d1 = distances_to_query(vectors, q, DistanceMetric.ANGULAR)
        d2 = distances_to_query(vectors * 3.0, q * 0.5, DistanceMetric.ANGULAR)
        assert np.allclose(d1, d2, atol=1e-5)

    def test_angular_zero_vector_safe(self):
        vecs = np.zeros((2, 4), dtype=np.float32)
        d = distances_to_query(vecs, np.ones(4, dtype=np.float32),
                               DistanceMetric.ANGULAR)
        assert np.all(np.isfinite(d))

    def test_shape_validation(self, vectors):
        with pytest.raises(ValueError):
            distances_to_query(vectors, np.zeros(3), DistanceMetric.EUCLIDEAN)
        with pytest.raises(ValueError):
            distances_to_query(vectors[0], vectors[0], DistanceMetric.EUCLIDEAN)


class TestPairwise:
    def test_consistent_with_single_query(self, vectors):
        for metric in DistanceMetric:
            mat = pairwise_distances(vectors[:5], vectors, metric)
            for i in range(5):
                row = distances_to_query(vectors, vectors[i], metric)
                assert np.allclose(mat[i], row, atol=1e-4)

    def test_euclidean_non_negative(self, vectors):
        mat = pairwise_distances(vectors, vectors, DistanceMetric.EUCLIDEAN)
        assert np.all(mat >= 0.0)

    def test_euclidean_symmetric(self, vectors):
        mat = pairwise_distances(vectors, vectors, DistanceMetric.EUCLIDEAN)
        assert np.allclose(mat, mat.T, atol=1e-4)

    def test_shape_mismatch_rejected(self, vectors):
        with pytest.raises(ValueError):
            pairwise_distances(vectors, vectors[:, :4], DistanceMetric.EUCLIDEAN)


class TestScalarDistance:
    def test_scalar_matches_batch(self, vectors):
        d = distance(vectors[0], vectors[1], DistanceMetric.EUCLIDEAN)
        ref = float(((vectors[0] - vectors[1]) ** 2).sum())
        assert d == pytest.approx(ref, rel=1e-5)
