"""Integration tests for the assembled SSD device."""

import numpy as np
import pytest

from repro.flash.ecc import LDPCModel
from repro.flash.geometry import PhysicalAddress
from repro.flash.ssd import SSD
from repro.flash.timing import FlashTiming


@pytest.fixture()
def ssd(tiny_geometry):
    return SSD(geometry=tiny_geometry, timing=FlashTiming())


class TestFunctionalAccess:
    def test_program_read_roundtrip(self, ssd):
        addr = PhysicalAddress(lun=2, plane=1, block=1, page=3)
        data = np.arange(100, dtype=np.uint8)
        ssd.program(addr, data)
        assert np.array_equal(ssd.read(addr, 100), data)

    def test_read_counts_page_and_ecc(self, ssd):
        addr = PhysicalAddress(lun=0, plane=0, block=0, page=0)
        ssd.read(addr, 8)
        assert ssd.counters["page_reads"] == 1
        assert ssd.counters["ecc_hard_decodes"] == 1

    def test_soft_decode_injection(self, tiny_geometry):
        ssd = SSD(
            geometry=tiny_geometry,
            ldpc=LDPCModel(hard_failure_prob=1.0),
        )
        ssd.read(PhysicalAddress(lun=0, plane=0, block=0, page=0), 8)
        assert ssd.counters["ecc_soft_decodes"] == 1

    def test_program_mid_page_rejected(self, ssd):
        with pytest.raises(ValueError):
            ssd.program(
                PhysicalAddress(lun=0, plane=0, block=0, page=0, byte=4),
                np.zeros(4, dtype=np.uint8),
            )

    def test_invalid_address_rejected(self, ssd):
        with pytest.raises(ValueError):
            ssd.read(PhysicalAddress(lun=999, plane=0, block=0, page=0), 8)

    def test_multi_plane_read_counters(self, ssd):
        addrs = [
            PhysicalAddress(lun=0, plane=0, block=0, page=0),
            PhysicalAddress(lun=0, plane=1, block=0, page=0),
        ]
        ssd.multi_plane_read(addrs, 8)
        assert ssd.counters["page_reads"] == 2
        assert ssd.counters["multiplane_reads"] == 1


class TestRefreshTransparency:
    def test_data_survives_refresh(self, ssd):
        addr = PhysicalAddress(lun=1, plane=0, block=2, page=1)
        data = np.arange(32, dtype=np.uint8)
        ssd.program(addr, data)
        ssd.refresh(1, 0, 2)
        # Same logical address still returns the data.
        assert np.array_equal(ssd.read(addr, 32), data)
        assert ssd.counters["refreshes"] == 1
        assert ssd.counters["refresh_pages_moved"] == 1

    def test_repeated_refreshes(self, ssd):
        addr = PhysicalAddress(lun=0, plane=1, block=0, page=0)
        data = np.full(16, 42, dtype=np.uint8)
        ssd.program(addr, data)
        for _ in range(5):
            ssd.refresh(0, 1, 0)
        assert np.array_equal(ssd.read(addr, 16), data)
        ssd.ftl.check_consistency()


class TestCapacity:
    def test_usable_bytes_excludes_reserved(self, ssd, tiny_geometry):
        assert ssd.usable_bytes < tiny_geometry.capacity_bytes
        expected = (
            tiny_geometry.total_planes
            * ssd.ftl.usable_blocks
            * tiny_geometry.pages_per_block
            * tiny_geometry.page_size
        )
        assert ssd.usable_bytes == expected

    def test_page_loads_total_tracks_planes(self, ssd):
        ssd.read(PhysicalAddress(lun=0, plane=0, block=0, page=0), 8)
        ssd.read(PhysicalAddress(lun=3, plane=1, block=0, page=0), 8)
        assert ssd.page_loads_total() == 2
