"""Dynamic batcher policy edge cases."""

from __future__ import annotations

import pytest

from repro.serving.batcher import BatchPolicy, DynamicBatcher
from repro.serving.request import Request


def req(i: int, t: float) -> Request:
    return Request(request_id=i, query_id=i, arrival_s=t)


class TestBatchPolicy:
    def test_defaults_valid(self):
        policy = BatchPolicy()
        assert policy.max_batch_size >= 1
        assert policy.mode == "batch"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"max_wait_s": -1.0},
            {"mode": "nonsense"},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BatchPolicy(**kwargs)


class TestSizeTrigger:
    def test_batch_closes_at_max_size(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=3, max_wait_s=1.0))
        assert batcher.offer(req(0, 0.0)) is None
        assert batcher.offer(req(1, 0.1)) is None
        batch = batcher.offer(req(2, 0.2))
        assert batch is not None and len(batch) == 3
        assert len(batcher) == 0
        assert batcher.batches_closed == 1

    def test_batch_size_one_degenerate(self):
        """max_batch_size=1 must dispatch every request immediately."""
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=1, max_wait_s=1.0))
        for i in range(5):
            batch = batcher.offer(req(i, 0.1 * i))
            assert batch is not None and len(batch) == 1
            assert batch[0].request_id == i
        assert batcher.batches_closed == 5
        assert batcher.timeout_closes == 0


class TestTimeoutTrigger:
    def test_timeout_fires_on_partial_batch(self):
        """The wait-time trigger must close a partially filled batch."""
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=8, max_wait_s=0.002))
        batcher.offer(req(0, 1.000))
        batcher.offer(req(1, 1.001))
        assert batcher.deadline() == pytest.approx(1.002)
        # Not due yet.
        assert batcher.poll(1.0015) is None
        batch = batcher.poll(1.002)
        assert batch is not None and len(batch) == 2
        assert batcher.timeout_closes == 1
        assert len(batcher) == 0
        assert batcher.deadline() is None

    def test_deadline_tracks_oldest_pending(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=8, max_wait_s=0.01))
        batcher.offer(req(0, 0.0))
        batcher.offer(req(1, 0.005))
        assert batcher.deadline() == pytest.approx(0.01)
        assert batcher.poll(0.01) is not None
        # Queue drained — no deadline until the next offer.
        assert batcher.deadline() is None

    def test_empty_batcher_never_polls(self):
        batcher = DynamicBatcher(BatchPolicy())
        assert batcher.deadline() is None
        assert batcher.poll(100.0) is None
        assert batcher.flush() is None


class TestModes:
    def test_greedy_closes_when_the_clock_moves_past_arrival(self):
        """Greedy waits zero time: the batch's deadline is its own
        arrival instant and expires as soon as the clock moves on."""
        batcher = DynamicBatcher(
            BatchPolicy(max_batch_size=32, max_wait_s=1.0, mode="greedy")
        )
        assert batcher.offer(req(0, 0.5)) is None
        assert batcher.deadline() == 0.5
        # Not expired *at* the arrival instant (simultaneous arrivals
        # may still join) ...
        assert not batcher.expired(0.5)
        assert batcher.poll(0.5) is None
        # ... but expired the moment simulated time moves past it.
        assert batcher.expired(0.5000001)
        batch = batcher.poll(0.5000001)
        assert batch is not None and len(batch) == 1
        assert batcher.timeout_closes == 0  # zero wait is not a timeout

    def test_greedy_groups_simultaneous_arrivals(self):
        """Arrivals at exactly the same simulated time share one batch
        (the docstring's 'unless arrivals are simultaneous' case)."""
        batcher = DynamicBatcher(
            BatchPolicy(max_batch_size=32, max_wait_s=1.0, mode="greedy")
        )
        assert batcher.offer(req(0, 1.0)) is None
        assert batcher.offer(req(1, 1.0)) is None
        assert batcher.offer(req(2, 1.0)) is None
        batch = batcher.poll(1.1)
        assert batch is not None
        assert [r.request_id for r in batch] == [0, 1, 2]

    def test_greedy_still_closes_on_size(self):
        batcher = DynamicBatcher(
            BatchPolicy(max_batch_size=2, max_wait_s=1.0, mode="greedy")
        )
        assert batcher.offer(req(0, 1.0)) is None
        batch = batcher.offer(req(1, 1.0))
        assert batch is not None and len(batch) == 2

    def test_fixed_has_no_deadline_and_flushes(self):
        batcher = DynamicBatcher(
            BatchPolicy(max_batch_size=4, max_wait_s=0.001, mode="fixed")
        )
        for i in range(3):
            assert batcher.offer(req(i, 0.0)) is None
        assert batcher.deadline() is None
        assert batcher.poll(1e9) is None  # timeout trigger disabled
        batch = batcher.flush()
        assert batch is not None and len(batch) == 3

    def test_fixed_still_closes_on_size(self):
        batcher = DynamicBatcher(
            BatchPolicy(max_batch_size=2, max_wait_s=0.001, mode="fixed")
        )
        assert batcher.offer(req(0, 0.0)) is None
        assert batcher.offer(req(1, 0.0)) is not None


class TestDeadlineEdgeCases:
    """Pinned event-ordering semantics at exact-tie timestamps."""

    def test_zero_max_wait_deadline_equals_arrival(self):
        """``max_wait_s=0``: the deadline is the arrival time itself and
        is already expired *at* that time — the batch-mode timeout is
        inclusive, so each arrival closes alone the moment it is
        offered (the event loop polls right after the offer)."""
        batcher = DynamicBatcher(BatchPolicy(max_batch_size=8, max_wait_s=0.0))
        assert batcher.offer(req(0, 1.0)) is None
        assert batcher.deadline() == 1.0
        assert batcher.expired(1.0)
        batch = batcher.poll(1.0)
        assert batch is not None and len(batch) == 1
        assert batcher.timeout_closes == 1
        assert batcher.deadline() is None

    def test_timeout_at_exactly_the_next_arrival_fires_first(self):
        """A timeout due exactly at the next arrival's timestamp closes
        *before* that arrival is offered: deadline events precede
        same-time arrivals, so the late request starts a new batch."""
        batcher = DynamicBatcher(
            BatchPolicy(max_batch_size=8, max_wait_s=0.002)
        )
        batcher.offer(req(0, 1.000))
        assert batcher.deadline() == pytest.approx(1.002)
        # The event loop fires due deadlines before offering the
        # arrival at t=1.002: inclusive expiry means this one is due.
        assert batcher.expired(1.002)
        batch = batcher.poll(1.002)
        assert batch is not None and [r.request_id for r in batch] == [0]
        # The same-time arrival lands in a fresh batch with its own
        # deadline.
        assert batcher.offer(req(1, 1.002)) is None
        assert batcher.deadline() == pytest.approx(1.004)
        assert not batcher.expired(1.002)
