"""Tests for read-disturb-triggered refresh and wear accounting."""

import numpy as np
import pytest

from repro.flash.ftl import FlashTranslationLayer
from repro.flash.geometry import PhysicalAddress
from repro.flash.ssd import SSD
from repro.flash.timing import FlashTiming


class TestReadDisturbCounting:
    def test_threshold_triggers(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry, read_disturb_threshold=5)
        for _ in range(4):
            assert not ftl.record_read(0, 0, 1)
        assert ftl.record_read(0, 0, 1)

    def test_refresh_resets_counter(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry, read_disturb_threshold=3)
        for _ in range(3):
            ftl.record_read(0, 0, 2)
        ftl.refresh_block(0, 0, 2)
        assert not ftl.record_read(0, 0, 2)

    def test_out_of_range_block(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry)
        with pytest.raises(ValueError):
            ftl.record_read(0, 0, ftl.usable_blocks)

    def test_invalid_threshold(self, tiny_geometry):
        with pytest.raises(ValueError):
            FlashTranslationLayer(tiny_geometry, read_disturb_threshold=0)


class TestWearAccounting:
    def test_erase_counts_follow_refreshes(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry)
        event = ftl.refresh_block(1, 0, 3)
        assert ftl.erase_counts[1, 0, event.old_block] == 1
        assert ftl.wear_summary()["total_erases"] == 1.0

    def test_wear_spreads_over_recycled_blocks(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry, reserved_per_plane=2)
        for _ in range(20):
            ftl.refresh_block(0, 0, 0)
        summary = ftl.wear_summary()
        assert summary["total_erases"] == 20.0
        # Round-robin free list: no single block absorbs all erases.
        assert summary["max_erases"] < 20.0


class TestSSDIntegration:
    def test_disturb_refresh_transparent_to_readers(self, tiny_geometry):
        ssd = SSD(geometry=tiny_geometry, timing=FlashTiming())
        ssd.ftl.read_disturb_threshold = 10
        address = PhysicalAddress(lun=0, plane=0, block=0, page=0)
        data = np.arange(64, dtype=np.uint8)
        ssd.program(address, data)
        for _ in range(25):
            assert np.array_equal(ssd.read(address, 64), data)
        assert ssd.counters["disturb_refreshes"] == 2
        assert len(ssd.ftl.refresh_log) == 2
        ssd.ftl.check_consistency()

    def test_luncsr_follows_disturb_refreshes(
        self, small_graph, tiny_config
    ):
        """A hot vertex read past the disturb threshold relocates its
        block; LUNCSR must track it without any explicit refresh call."""
        from repro.core.luncsr import LUNCSR
        from repro.core.placement import map_vertices

        ssd = SSD(geometry=tiny_config.geometry)
        ssd.ftl.read_disturb_threshold = 8
        vector_bytes = small_graph.dim * 4
        placement = map_vertices(
            small_graph.num_vertices, tiny_config.geometry, vector_bytes
        )
        luncsr = LUNCSR.build(small_graph, placement, vector_bytes)
        luncsr.attach_to_ftl(ssd.ftl)
        v = 0
        address = PhysicalAddress(
            lun=int(placement.lun[v]),
            plane=int(placement.plane[v]),
            block=int(placement.block[v]),
            page=int(placement.page[v]),
        )
        ssd.program(address, np.frombuffer(
            small_graph.vectors[v].tobytes(), dtype=np.uint8
        ))
        before = int(luncsr.blk[v])
        for _ in range(10):
            ssd.read(address, vector_bytes)
        assert int(luncsr.blk[v]) != before
        assert luncsr.refresh_updates >= 1
