"""Tests for the data-movement accounting."""

import pytest

from repro.analysis.datamovement import (
    DataMovement,
    filtering_factor,
    movement_of,
)
from repro.sim.stats import Counters, SimResult


def _result(platform, **counts):
    return SimResult(
        platform, "hnsw", "sift-1b", 100, 1.0, counters=Counters(counts)
    )


class TestMovementExtraction:
    def test_counter_mapping(self):
        r = _result(
            "ndsearch",
            pcie_bytes=1000,
            pcie_private_bytes=200,
            internal_bytes=50,
        )
        m = movement_of(r)
        assert m.host_pcie_bytes == 1000
        assert m.private_pcie_bytes == 200
        assert m.internal_bytes == 50
        assert m.total_bytes == 1250

    def test_missing_counters_read_zero(self):
        m = movement_of(_result("cpu"))
        assert m.total_bytes == 0

    def test_per_query(self):
        m = DataMovement("x", 1000, 0, 0)
        assert m.per_query(100) == 10.0
        assert m.per_query(0) == 0.0


class TestFilteringFactor:
    def test_ratio(self):
        nd = _result("ndsearch", internal_bytes=100)
        ds = _result("ds-cp", internal_bytes=3200)
        assert filtering_factor(nd, ds) == pytest.approx(32.0)

    def test_zero_ndsearch_traffic(self):
        nd = _result("ndsearch")
        ds = _result("ds-cp", internal_bytes=100)
        assert filtering_factor(nd, ds) == float("inf")
