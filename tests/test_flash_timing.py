"""Unit tests for the timing/bandwidth parameter model."""

import dataclasses

import pytest

from repro.flash.timing import FlashTiming


class TestConvenienceMethods:
    def test_page_transfer(self):
        t = FlashTiming()
        assert t.page_transfer_s(16 * 1024) == pytest.approx(
            16 * 1024 / t.channel_bus_bw
        )

    def test_host_transfer_includes_latency(self):
        t = FlashTiming()
        assert t.host_transfer_s(0) == 0.0
        assert t.host_transfer_s(1) > t.pcie_host_latency_s
        big = t.host_transfer_s(10**9)
        assert big == pytest.approx(
            t.pcie_host_latency_s + 1e9 / t.pcie_host_bw
        )

    def test_private_link_slower_than_host(self):
        t = FlashTiming()
        nbytes = 10**8
        assert t.private_transfer_s(nbytes) > t.host_transfer_s(nbytes)

    def test_distance_mac_scales_with_dim(self):
        t = FlashTiming()
        assert t.distance_mac_s(128) == pytest.approx(2 * t.distance_mac_s(64))
        macs = t.macs_per_group * t.mac_groups_per_lun_acc
        assert t.distance_mac_s(macs) == pytest.approx(t.mac_op_s)

    def test_fpga_sort_throughput(self):
        t = FlashTiming()
        assert t.fpga_sort_s(0) == 0.0
        elems = int(t.fpga_sort_elems_per_cycle * t.fpga_clock_hz)
        assert t.fpga_sort_s(elems) == pytest.approx(1.0)

    def test_scaled_copy_overrides(self):
        t = FlashTiming().scaled_copy(read_page_s=1e-6)
        assert t.read_page_s == 1e-6
        assert t.program_page_s == FlashTiming().program_page_s
        with pytest.raises(TypeError):
            FlashTiming().scaled_copy(not_a_field=1.0)


class TestPhysicalSanity:
    def test_read_slower_than_transfer(self):
        """tR dominates moving the page over the bus (why multi-plane
        and page-buffer reuse matter)."""
        t = FlashTiming()
        assert t.read_page_s > t.page_transfer_s(16 * 1024)

    def test_program_slower_than_read(self):
        t = FlashTiming()
        assert t.program_page_s > t.read_page_s
        assert t.erase_block_s > t.program_page_s

    def test_external_accelerator_penalty_is_large(self):
        """The ~30 us penalty exceeds moving a whole page over the chip
        bus — the core of the DS-c/DS-cp handicap (Section III)."""
        t = FlashTiming()
        assert t.external_accelerator_s > 16 * 1024 / t.chip_bus_bw

    def test_soft_decode_much_slower_than_hard(self):
        t = FlashTiming()
        assert t.ecc_soft_decode_s >= 5 * t.ecc_hard_decode_s

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            FlashTiming().read_page_s = 0.0
