"""Tests for the DiskANN / Vamana implementation."""

import numpy as np
import pytest

from repro.ann import BruteForceIndex, DiskANNIndex, DiskANNParams, recall_at_k
from repro.ann.trace import TraceRecorder


@pytest.fixture(scope="module")
def index(request):
    small_vectors = request.getfixturevalue("small_vectors")
    return DiskANNIndex(small_vectors, DiskANNParams(R=12, L=32, alpha=1.2))


class TestParams:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DiskANNParams(R=1)
        with pytest.raises(ValueError):
            DiskANNParams(R=16, L=8)
        with pytest.raises(ValueError):
            DiskANNParams(alpha=0.5)


class TestConstruction:
    def test_degree_bounded_by_R(self, index):
        assert all(len(a) <= index.params.R for a in index.adjacency)

    def test_medoid_is_central(self, index, small_vectors):
        centroid = small_vectors.mean(axis=0)
        d_medoid = ((small_vectors[index.medoid] - centroid) ** 2).sum()
        d_random = ((small_vectors[0] - centroid) ** 2).sum()
        assert d_medoid <= d_random

    def test_graph_connected(self, index):
        assert index.base_graph().is_connected()

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            DiskANNIndex(np.zeros((0, 3), dtype=np.float32))


class TestSearch:
    def test_recall(self, index, small_vectors, small_queries):
        bf = BruteForceIndex(small_vectors)
        gt, _ = bf.search_batch(small_queries, 5)
        ids, _, _ = index.search_batch(small_queries, 5, ef=48)
        assert recall_at_k(ids, gt) >= 0.85

    def test_exact_match(self, index, small_vectors):
        ids, dists = index.search(small_vectors[42], k=1, ef=32)
        assert ids[0] == 42

    def test_trace_recorded_from_medoid(self, index, small_queries):
        rec = TraceRecorder(0)
        index.search(small_queries[0], k=5, ef=32, recorder=rec)
        trace = rec.finish()
        assert trace.iterations[0].entry == index.medoid

    def test_ef_validation(self, index, small_queries):
        with pytest.raises(ValueError):
            index.search(small_queries[0], k=10, ef=4)


class TestHotVertices:
    def test_fallback_uses_degree(self, small_vectors):
        index = DiskANNIndex(small_vectors, DiskANNParams(R=8, L=16))
        hot = index.hot_vertices(0.05)
        assert hot.size == int(small_vectors.shape[0] * 0.05)
        degrees = np.array([len(a) for a in index.adjacency])
        assert degrees[hot[0]] == degrees.max()

    def test_visit_counts_drive_cache(self, index, small_queries):
        index.search_batch(small_queries, 5, ef=32, record=False)
        hot = index.hot_vertices(0.1)
        # The medoid is visited by every search.
        assert index.medoid in hot.tolist()


class TestRobustPrune:
    def test_prune_limits_degree(self, index, small_vectors):
        candidates = {
            v: float(((small_vectors[v] - small_vectors[0]) ** 2).sum())
            for v in range(1, 60)
        }
        kept = index._robust_prune(0, candidates, alpha=1.2)
        assert len(kept) <= index.params.R
        assert 0 not in kept

    def test_prune_keeps_globally_nearest(self, index, small_vectors):
        # The prune pool is candidates plus v's current out-neighbors;
        # the closest member of that merged pool is always selected.
        candidates = {
            v: float(((small_vectors[v] - small_vectors[0]) ** 2).sum())
            for v in range(1, 60)
        }
        pool = dict(candidates)
        for u in index.adjacency[0]:
            pool[u] = float(((small_vectors[u] - small_vectors[0]) ** 2).sum())
        pool.pop(0, None)
        nearest = min(pool, key=pool.get)
        kept = index._robust_prune(0, candidates, alpha=1.2)
        assert nearest in kept
