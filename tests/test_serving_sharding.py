"""Shard routing: top-k merge correctness and device-pool construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann import BruteForceIndex, merge_topk
from repro.core.config import NDSearchConfig
from repro.serving.sharding import PARTITIONED, REPLICATED, build_router


class TestMergeTopK:
    def test_merge_matches_unsharded_ground_truth(self, small_vectors, small_queries):
        """Per-shard exact top-k merged == global exact top-k."""
        k = 8
        n = small_vectors.shape[0]
        bounds = [0, n // 4, n // 2, 3 * n // 4, n]
        ids_per_shard, dists_per_shard = [], []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            local_ids, dists = BruteForceIndex(small_vectors[lo:hi]).search_batch(
                small_queries, k
            )
            ids_per_shard.append(local_ids + lo)
            dists_per_shard.append(dists)
        merged_ids, merged_dists = merge_topk(ids_per_shard, dists_per_shard, k)
        exact_ids, exact_dists = BruteForceIndex(small_vectors).search_batch(
            small_queries, k
        )
        np.testing.assert_array_equal(merged_ids, exact_ids)
        np.testing.assert_allclose(merged_dists, exact_dists)

    def test_padding_ignored(self):
        ids = [np.array([[0, -1]]), np.array([[3, 2]])]
        dists = [np.array([[1.0, np.inf]]), np.array([[0.5, 2.0]])]
        merged_ids, merged_dists = merge_topk(ids, dists, k=3)
        np.testing.assert_array_equal(merged_ids, [[3, 0, 2]])
        np.testing.assert_allclose(merged_dists, [[0.5, 1.0, 2.0]])

    def test_short_of_k_pads_output(self):
        merged_ids, merged_dists = merge_topk(
            [np.array([[4]])], [np.array([[1.5]])], k=3
        )
        np.testing.assert_array_equal(merged_ids, [[4, -1, -1]])
        assert merged_dists[0, 0] == 1.5
        assert np.isinf(merged_dists[0, 1:]).all()

    def test_duplicates_deduplicated(self):
        """Replicated shards return the same IDs; merge keeps one copy."""
        ids = [np.array([[7, 3]]), np.array([[7, 3]])]
        dists = [np.array([[0.1, 0.2]]), np.array([[0.1, 0.2]])]
        merged_ids, _ = merge_topk(ids, dists, k=4)
        np.testing.assert_array_equal(merged_ids, [[7, 3, -1, -1]])

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            merge_topk([], [], k=1)
        with pytest.raises(ValueError):
            merge_topk([np.zeros((1, 2))], [np.zeros((1, 2))], k=0)


class TestConfigShard:
    def test_shard_divides_channels(self):
        config = NDSearchConfig.scaled()
        per_shard = config.shard(4)
        assert per_shard.geometry.channels == config.geometry.channels // 4
        assert per_shard.geometry.total_luns * 4 == config.geometry.total_luns
        # Per-LUN parameters are untouched.
        assert per_shard.geometry.page_size == config.geometry.page_size
        assert per_shard.max_queries_per_lun == config.max_queries_per_lun

    def test_shard_one_is_identity(self):
        config = NDSearchConfig.scaled()
        assert config.shard(1) is config

    def test_shard_falls_back_to_chips(self):
        config = NDSearchConfig.scaled()  # 16 channels x 2 chips = 32 chips
        per_shard = config.shard(32)
        g = per_shard.geometry
        assert (g.channels, g.chips_per_channel) == (1, 1)
        assert g.total_luns * 32 == config.geometry.total_luns

    def test_indivisible_raises(self):
        config = NDSearchConfig.scaled()
        with pytest.raises(ValueError):
            config.shard(7)


class TestRouters:
    @pytest.fixture(scope="class")
    def config(self):
        return NDSearchConfig.scaled()

    def test_replicated_matches_unsharded_exactly(
        self, small_vectors, small_queries, config
    ):
        """Routing must never change results: replicated == unsharded."""
        k = 6
        router = build_router(
            small_vectors, num_shards=2, config=config, mode=REPLICATED
        )
        merged_ids, merged_dists, results = router.search_all(small_queries, k)
        solo = build_router(small_vectors, num_shards=1, config=config)
        solo_ids, solo_dists, _ = solo.search_all(small_queries, k)
        np.testing.assert_array_equal(merged_ids, solo_ids)
        np.testing.assert_allclose(merged_dists, solo_dists)
        assert len(results) == 2

    def test_partitioned_covers_corpus_disjointly(
        self, small_vectors, config
    ):
        router = build_router(
            small_vectors, num_shards=3, config=config, mode=PARTITIONED, seed=3
        )
        all_ids = np.concatenate(router.global_ids)
        assert all_ids.size == small_vectors.shape[0]
        assert np.unique(all_ids).size == small_vectors.shape[0]

    def test_partitioned_recall_close_to_unsharded(
        self, small_vectors, small_queries, config
    ):
        from repro.ann import recall_at_k

        k = 6
        gt, _ = BruteForceIndex(small_vectors).search_batch(small_queries, k)
        router = build_router(
            small_vectors, num_shards=3, config=config, mode=PARTITIONED, seed=3
        )
        ids, dists, results = router.search_all(small_queries, k)
        assert len(results) == 3
        # Global IDs, valid range, sorted by distance per row.
        assert ids.min() >= 0 and ids.max() < small_vectors.shape[0]
        assert np.isfinite(dists).all()
        assert (np.diff(dists, axis=1) >= 0).all()
        # Per-shard searches are exact within each shard at this scale,
        # so partitioned recall should be at least near the unsharded
        # graph's recall.
        assert recall_at_k(ids, gt, k) >= 0.8


class TestReplicaLifecycle:
    @pytest.fixture(scope="class")
    def config(self):
        return NDSearchConfig.scaled()

    def test_add_then_remove_replicas_with_shared_index(
        self, small_vectors, small_queries, config
    ):
        """remove_replica is the symmetric scale-down op: the tail
        replica leaves rotation, the shared index keeps serving
        bit-identical results on the survivors."""
        router = build_router(small_vectors, num_shards=2, config=config)
        before_ids, before_dists, _ = router.search_on(0, small_queries, 5)
        assert router.add_replica() == 3
        assert router.add_replica() == 4
        # Shared-index accounting: every replica is the same backend.
        assert all(b is router.backends[0] for b in router.backends)
        assert router.remove_replica() == 3
        assert router.remove_replica() == 2
        after_ids, after_dists, _ = router.search_on(1, small_queries, 5)
        np.testing.assert_array_equal(before_ids, after_ids)
        np.testing.assert_allclose(before_dists, after_dists)

    def test_remove_never_empties_the_pool(self, small_vectors, config):
        router = build_router(small_vectors, num_shards=1, config=config)
        with pytest.raises(ValueError):
            router.remove_replica()

    def test_partitioned_pools_cannot_add_or_remove_replicas(
        self, small_vectors, config
    ):
        router = build_router(
            small_vectors, num_shards=2, config=config, mode=PARTITIONED, seed=3
        )
        with pytest.raises(ValueError):
            router.add_replica()
        with pytest.raises(ValueError):
            router.remove_replica()


class TestClusterPlacement:
    @pytest.fixture(scope="class")
    def config(self):
        return NDSearchConfig.scaled()

    @pytest.fixture(scope="class")
    def router(self, small_vectors, config):
        return build_router(
            small_vectors, num_shards=2, config=config, mode=PARTITIONED,
            seed=3, clusters_per_shard=2,
        )

    def test_clusters_cover_corpus_and_place_round_robin(
        self, small_vectors, router
    ):
        assert router.num_clusters == 4
        assert router.num_shards == 2
        all_ids = np.concatenate(router.global_ids)
        assert np.unique(all_ids).size == small_vectors.shape[0]
        np.testing.assert_array_equal(router.cluster_shard, [0, 1, 0, 1])
        assert router.centroids.shape[0] == 4

    def test_probe_routes_to_clusters(self, router, small_queries):
        assignment = router.probe(small_queries, 3)
        assert assignment.shape == (small_queries.shape[0], 3)
        assert assignment.max() < router.num_clusters
        with pytest.raises(ValueError):
            router.probe(small_queries, 5)

    def test_jobs_carry_cluster_and_owning_shard(self, router, small_queries):
        _, _, jobs = router.search_probed(small_queries, 5, None)
        assert [j.cluster for j in jobs] == [0, 1, 2, 3]
        assert [j.shard for j in jobs] == [0, 1, 0, 1]

    def test_broadcast_fanout_matches_search_all(self, router, small_queries):
        """search_probed(nprobe=None) must agree with search_all bit
        for bit — it is the serving path for broadcast batches."""
        k = 6
        all_ids, all_dists, results = router.search_all(small_queries, k)
        probed_ids, probed_dists, jobs = router.search_probed(
            small_queries, k, None
        )
        np.testing.assert_array_equal(probed_ids, all_ids)
        np.testing.assert_array_equal(probed_dists, all_dists)
        assert len(jobs) == len(results)
        for job in jobs:
            np.testing.assert_array_equal(
                job.rows, np.arange(small_queries.shape[0])
            )

    def test_full_nprobe_matches_broadcast(self, router, small_queries):
        k = 5
        bcast_ids, bcast_dists, _ = router.search_probed(small_queries, k, None)
        full_ids, full_dists, _ = router.search_probed(
            small_queries, k, router.num_clusters
        )
        np.testing.assert_array_equal(full_ids, bcast_ids)
        np.testing.assert_array_equal(full_dists, bcast_dists)

    def test_reassign_cluster_moves_timing_not_results(
        self, router, small_queries
    ):
        k = 5
        before_ids, _, _ = router.search_probed(small_queries, k, 2)
        original = int(router.cluster_shard[0])
        target = 1 - original
        router.reassign_cluster(0, target)
        try:
            assert int(router.cluster_shard[0]) == target
            after_ids, _, jobs = router.search_probed(small_queries, k, 2)
            np.testing.assert_array_equal(after_ids, before_ids)
            by_cluster = {j.cluster: j for j in jobs}
            if 0 in by_cluster:
                assert by_cluster[0].shard == target
        finally:
            router.reassign_cluster(0, original)

    def test_reassign_validation(self, router, small_vectors, config):
        with pytest.raises(ValueError):
            router.reassign_cluster(99, 0)
        with pytest.raises(ValueError):
            router.reassign_cluster(0, 99)
        replicated = build_router(small_vectors, num_shards=2, config=config)
        with pytest.raises(ValueError):
            replicated.reassign_cluster(0, 0)

    def test_clusters_per_shard_validation(self, small_vectors, config):
        with pytest.raises(ValueError):
            build_router(
                small_vectors, num_shards=2, config=config,
                clusters_per_shard=2,  # replicated: not a knob
            )
        with pytest.raises(ValueError):
            build_router(
                small_vectors, num_shards=2, config=config, mode=PARTITIONED,
                clusters_per_shard=0,
            )


class TestSelectiveProbing:
    @pytest.fixture(scope="class")
    def config(self):
        return NDSearchConfig.scaled()

    @pytest.fixture(scope="class")
    def router(self, small_vectors, config):
        return build_router(
            small_vectors, num_shards=4, config=config, mode=PARTITIONED, seed=3
        )

    def test_probe_shape_and_range(self, router, small_queries):
        assignment = router.probe(small_queries, 2)
        assert assignment.shape == (small_queries.shape[0], 2)
        assert assignment.min() >= 0 and assignment.max() < 4
        # A query never probes the same shard twice.
        for row in assignment:
            assert len(set(row.tolist())) == 2

    def test_probe_orders_by_centroid_distance(self, router, small_queries):
        from repro.ann.distance import DistanceMetric, pairwise_distances

        assignment = router.probe(small_queries, 4)
        dmat = pairwise_distances(
            small_queries, router.centroids, DistanceMetric.EUCLIDEAN
        )
        for i in range(small_queries.shape[0]):
            d = dmat[i, assignment[i]]
            assert (np.diff(d) >= 0).all()

    def test_probe_validation(self, router, small_vectors, small_queries, config):
        with pytest.raises(ValueError):
            router.probe(small_queries, 0)
        with pytest.raises(ValueError):
            router.probe(small_queries, 5)
        replicated = build_router(small_vectors, num_shards=2, config=config)
        with pytest.raises(ValueError):
            replicated.probe(small_queries, 1)

    def test_full_probe_bit_identical_to_broadcast(self, router, small_queries):
        """nprobe = num_shards must reproduce search_all exactly."""
        k = 6
        bcast_ids, bcast_dists, _ = router.search_all(small_queries, k)
        probe_ids, probe_dists, jobs = router.search_probed(
            small_queries, k, nprobe=4
        )
        np.testing.assert_array_equal(probe_ids, bcast_ids)
        np.testing.assert_array_equal(probe_dists, bcast_dists)
        assert [job.shard for job in jobs] == [0, 1, 2, 3]
        for job in jobs:
            np.testing.assert_array_equal(
                job.rows, np.arange(small_queries.shape[0])
            )

    def test_jobs_cover_each_query_nprobe_times(self, router, small_queries):
        for nprobe in (1, 2, 3):
            _, _, jobs = router.search_probed(small_queries, 5, nprobe)
            counts = np.zeros(small_queries.shape[0], dtype=int)
            for job in jobs:
                assert (np.diff(job.rows) > 0).all()  # ascending, unique
                counts[job.rows] += 1
            assert (counts == nprobe).all()

    def test_merged_ids_are_valid_corpus_ids(
        self, router, small_vectors, small_queries
    ):
        ids, dists, _ = router.search_probed(small_queries, 5, nprobe=1)
        valid = ids >= 0
        assert valid[:, 0].all()  # at least one result per query
        assert ids[valid].max() < small_vectors.shape[0]
        assert np.isfinite(dists[valid]).all()

    def test_selective_recall_monotone_in_nprobe(
        self, router, small_vectors, small_queries
    ):
        from repro.ann import recall_at_k

        k = 5
        gt, _ = BruteForceIndex(small_vectors).search_batch(small_queries, k)
        recalls = []
        for nprobe in (1, 2, 4):
            ids, _, _ = router.search_probed(small_queries, k, nprobe)
            recalls.append(recall_at_k(ids, gt, k))
        assert recalls[0] <= recalls[1] + 1e-9 <= recalls[2] + 2e-9


class TestShardChipExactness:
    def test_no_flash_silently_dropped(self):
        """Every division path conserves the total chip count exactly."""
        from dataclasses import replace

        base = NDSearchConfig.scaled()
        config = replace(
            base, geometry=replace(base.geometry, channels=6, chips_per_channel=4)
        )
        total = 6 * 4
        for shards in (2, 3, 4, 6, 8, 12, 24):
            g = config.shard(shards).geometry
            assert g.channels * g.chips_per_channel * shards == total, shards
