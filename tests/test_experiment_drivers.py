"""Structural tests for the per-figure experiment drivers and the CLI."""

import importlib
import inspect

import pytest

from repro.experiments.__main__ import DRIVERS, main


class TestDriverRegistry:
    def test_every_paper_figure_has_a_driver(self):
        expected = {
            "fig01", "fig02", "fig04", "fig06", "fig10", "fig13", "fig14",
            "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
            "table1",
        }
        assert set(DRIVERS) == expected

    @pytest.mark.parametrize("name", sorted(DRIVERS))
    def test_driver_module_shape(self, name):
        module = importlib.import_module(DRIVERS[name])
        assert callable(module.run)
        assert module.__doc__, f"{name} driver needs a docstring"
        # Every driver exposes at least one structured collector.
        collectors = [
            obj for attr, obj in vars(module).items()
            if attr.startswith("collect") and callable(obj)
        ]
        assert collectors, f"{name} driver has no collect function"

    @pytest.mark.parametrize("name", sorted(DRIVERS))
    def test_run_accepts_no_surprise_required_args(self, name):
        module = importlib.import_module(DRIVERS[name])
        signature = inspect.signature(module.run)
        required = [
            p for p in signature.parameters.values()
            if p.default is inspect.Parameter.empty
            and p.kind not in (p.VAR_KEYWORD, p.VAR_POSITIONAL)
        ]
        assert not required, f"{name}.run must be callable with defaults"


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out
        assert "table1" in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "43.1" in out or "43.09" in out
