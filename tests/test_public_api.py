"""Smoke test: the package's public API imports and resolves."""

from __future__ import annotations

import importlib

import pytest


def test_top_level_all_resolves():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_serving_all_resolves():
    import repro.serving as serving

    for name in serving.__all__:
        assert getattr(serving, name, None) is not None, name


@pytest.mark.parametrize(
    "module",
    [
        "repro.ann",
        "repro.baselines",
        "repro.core",
        "repro.data",
        "repro.flash",
        "repro.lint",
        "repro.obs",
        "repro.serving",
        "repro.sim",
        "repro.sorting",
        "repro.workloads",
    ],
)
def test_subpackage_all_resolves(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert getattr(mod, name, None) is not None, f"{module}.{name}"


def test_top_level_serving_exports_are_the_real_ones():
    import repro
    from repro.serving.frontend import ServingFrontend

    assert repro.ServingFrontend is ServingFrontend
    assert repro.ZipfianSampler is importlib.import_module(
        "repro.workloads.traces"
    ).ZipfianSampler
