"""Snapshot/restore parity and the serving digital twin.

The incremental re-simulation machinery (PR 10) rests on one claim:
freezing a running serving simulation at a window boundary
(:meth:`ServingFrontend.snapshot`) and resuming it in a *fresh*
frontend (:meth:`ServingFrontend.restore`) is byte-identical to never
having paused.  This suite holds that claim to the same standard as
the event-kernel refactor before it — the 15 pinned legacy-loop
digests in :mod:`test_serving_parity` — by driving every pinned
configuration through snapshot-at-midpoint → restore → finish, plain
and with the full :mod:`repro.obs` instrumentation attached.

The edge cases the window grid does not guarantee are pinned
explicitly: a checkpoint taken while a cluster migration's
``DataMovement`` is still in the event heap, and one taken with a
``FlashMaintenance`` refresh pending.  Both must resume to the same
report as an uninterrupted run.

On top of restore parity, :class:`~repro.serving.twin.ServingTwin` is
checked for the properties the CI twin step asserts: a no-delta
what-if reproduces the from-scratch report byte for byte, repeated
what-ifs hit the content-addressed cache, fork reports never leak twin
bookkeeping, and the base report round-trips its ``twin`` summary
through ``to_dict``/``from_dict``/``format``.
"""

from __future__ import annotations

import copy
import dataclasses
import json
from types import SimpleNamespace

import pytest

from repro.core.config import NDSearchConfig
from repro.obs import SpanTracer
from repro.serving import (
    AutoscalePolicy,
    BatchPolicy,
    FlashConfig,
    PoissonArrivals,
    QueryStream,
    RebalancePolicy,
    ServingConfig,
    ServingFrontend,
    build_router,
)
from repro.serving.metrics import ServingReport
from repro.serving.sharding import PARTITIONED
from repro.serving.twin import ServingTwin, TwinCache, config_digest
from repro.sim.events import DataMovement, FlashMaintenance
from repro.sim.snapshot import SNAPSHOT_VERSION

from test_serving_parity import (
    CASES,
    CORPUS,
    DIM,
    GOLDEN,
    K,
    POOL,
    REQUESTS,
    STREAM_SEED,
    _digest,
    _run_case,
)


@pytest.fixture(scope="module")
def corpus_and_pool():
    from repro.data.synthetic import clustered_gaussian, split_queries

    vectors = clustered_gaussian(CORPUS, DIM, seed=31)
    pool = split_queries(vectors, POOL, seed=32)
    return vectors, pool


def _fresh_routers(vectors):
    """A fresh router wrapper per leg.

    The snapshot legs must not share mutable router state (autoscaling
    adds/removes replicas on its router); ``build_router`` memoizes the
    expensive immutable artifacts by content, so fresh wrappers are
    cheap.
    """
    config = NDSearchConfig.scaled()
    spill = dataclasses.replace(
        config, host=dataclasses.replace(
            config.host, dram_capacity_bytes=16 * 1024
        )
    )
    return {
        "x1": build_router(vectors, num_shards=1, config=config),
        "x4": build_router(vectors, num_shards=4, config=config),
        "part4": build_router(
            vectors, num_shards=4, config=config, mode=PARTITIONED, seed=35
        ),
        "cpu2": build_router(
            vectors, num_shards=2, config=spill, platform="cpu"
        ),
        "overload": build_router(vectors, num_shards=1, config=config),
    }


def _poisson_stream(rate=2000.0, zipf=0.0):
    return QueryStream(
        PoissonArrivals(rate), pool_size=POOL, n_requests=REQUESTS, k=K,
        zipf_exponent=zipf, seed=STREAM_SEED,
    ).generate()


def _report_bytes(report):
    return json.dumps(report.to_dict(), sort_keys=True).encode()


_BATCH_CFG = dict(cache_capacity=0, coalesce=False)


def _policy():
    return BatchPolicy(max_batch_size=32, max_wait_s=2e-3)


# ---- snapshot → restore → run parity vs the pinned digests ---------------

class TestSnapshotRestoreParity:
    """Every pinned configuration, paused at its midpoint and resumed
    in a fresh frontend, must still hit the legacy-loop digest."""

    @pytest.mark.parametrize(
        "traced", (False, True), ids=("plain", "traced")
    )
    @pytest.mark.parametrize("name", CASES)
    def test_restore_hits_golden_digest(
        self, name, traced, corpus_and_pool
    ):
        vectors, pool = corpus_and_pool
        tracer = SpanTracer() if traced else None
        window = 1e-3 if traced else None
        frontend, requests = _run_case(
            name, _fresh_routers(vectors), pool,
            tracer=tracer, metrics_window_s=window, build_only=True,
        )
        frontend.stream_begin(
            pool, calibrate_k=max(r.k for r in requests)
        )
        frontend.stream_extend(requests)
        t_mid = requests[len(requests) // 2].arrival_s
        frontend.stream_step(t_mid)
        snapshot = frontend.snapshot()
        assert snapshot.version == SNAPSHOT_VERSION
        assert snapshot.time == t_mid

        resumed_tracer = SpanTracer() if traced else None
        resumed, _ = _run_case(
            name, _fresh_routers(vectors), pool,
            tracer=resumed_tracer, metrics_window_s=window,
            build_only=True,
        )
        resumed.restore(snapshot, pool)
        report = resumed.stream_finish()
        got = _digest(report, resumed.stream_requests)
        assert got == GOLDEN[name], (
            f"snapshot→restore→run diverged from the pinned report for "
            f"{name!r}"
            + (" with instrumentation attached" if traced else "")
        )

    def test_snapshot_digest_is_tracer_blind(self, corpus_and_pool):
        # The captured state excludes the span tracer (observe-only by
        # construction), so a traced run and a plain run frozen at the
        # same point produce the same content address.  Windowed
        # metrics, by contrast, ARE simulation state — restore refuses
        # a windows-enabled snapshot into a windows-less frontend —
        # so both legs here run without them.
        vectors, pool = corpus_and_pool
        digests = []
        for tracer in (None, SpanTracer()):
            frontend, requests = _run_case(
                "batch-x4-lo", _fresh_routers(vectors), pool,
                tracer=tracer, build_only=True,
            )
            frontend.stream_begin(
                pool, calibrate_k=max(r.k for r in requests)
            )
            frontend.stream_extend(requests)
            frontend.stream_step(requests[len(requests) // 2].arrival_s)
            digests.append(frontend.snapshot().digest)
        assert digests[0] == digests[1]

    def test_snapshot_is_restorable_twice(self, corpus_and_pool):
        # Restoring deep-copies again: two forks of one checkpoint must
        # not share mutable state, so both reach the pinned digest.
        vectors, pool = corpus_and_pool
        frontend, requests = _run_case(
            "partitioned-nprobe2", _fresh_routers(vectors), pool,
            build_only=True,
        )
        frontend.stream_begin(pool, calibrate_k=max(r.k for r in requests))
        frontend.stream_extend(requests)
        frontend.stream_step(requests[len(requests) // 2].arrival_s)
        snapshot = frontend.snapshot()
        for _ in range(2):
            fork, _ = _run_case(
                "partitioned-nprobe2", _fresh_routers(vectors), pool,
                build_only=True,
            )
            fork.restore(snapshot, pool)
            report = fork.stream_finish()
            assert (
                _digest(report, fork.stream_requests)
                == GOLDEN["partitioned-nprobe2"]
            )

    def test_restore_rejects_version_and_mode_mismatch(
        self, corpus_and_pool
    ):
        vectors, pool = corpus_and_pool
        frontend, requests = _run_case(
            "batch-x4-lo", _fresh_routers(vectors), pool, build_only=True
        )
        frontend.stream_begin(pool, calibrate_k=max(r.k for r in requests))
        frontend.stream_extend(requests)
        frontend.stream_step(requests[10].arrival_s)
        snapshot = frontend.snapshot()

        stale = dataclasses.replace(snapshot, version=SNAPSHOT_VERSION + 1)
        target, _ = _run_case(
            "batch-x4-lo", _fresh_routers(vectors), pool, build_only=True
        )
        with pytest.raises(ValueError, match="version"):
            target.restore(stale, pool)

        partitioned, _ = _run_case(
            "partitioned-broadcast", _fresh_routers(vectors), pool,
            build_only=True,
        )
        with pytest.raises(ValueError, match="mode"):
            partitioned.restore(snapshot, pool)


# ---- checkpoints inside multi-event transactions -------------------------

class TestMidFlightCheckpoints:
    """A snapshot taken while a migration or a flash refresh is still
    in the event heap must resume byte-identically."""

    def test_mid_migration_checkpoint(self, corpus_and_pool):
        vectors, pool = corpus_and_pool
        # The rebalance suite's trigger shape — cluster-routed
        # (nprobe=1) skewed traffic over a 4×2-cluster partitioned
        # pool — with glacial migration bandwidth, so a triggered
        # migration stays in flight long enough for the step scan to
        # catch it mid-transfer.
        config = ServingConfig(
            policy=BatchPolicy(max_batch_size=16, max_wait_s=2e-3),
            nprobe=1,
            rebalance=RebalancePolicy(
                interval_s=2e-3, skew_threshold=0.05,
                min_window_queries=1, migration_gbps=1e-3,
            ),
            **_BATCH_CFG,
        )

        def factory():
            return build_router(
                vectors, num_shards=4, config=NDSearchConfig.scaled(),
                mode=PARTITIONED, seed=35, clusters_per_shard=2,
            )

        ref_requests = _poisson_stream(rate=16000.0, zipf=1.2)
        reference = ServingFrontend(factory(), config).run(
            ref_requests, pool
        )

        live = ServingFrontend(factory(), config)
        requests = _poisson_stream(rate=16000.0, zipf=1.2)
        live.stream_begin(pool)
        live.stream_extend(requests)
        snapshot = None
        for request in requests:
            live.stream_step(request.arrival_s)
            in_heap = any(
                isinstance(entry[-1], DataMovement)
                for entry in live._loop._heap
            )
            if in_heap or live.rebalancer._inflight:
                snapshot = live.snapshot(kind="mid-migration")
                break
        assert snapshot is not None, (
            "scan never caught an in-flight migration — the config no "
            "longer triggers rebalancing, so this edge case is untested"
        )

        resumed = ServingFrontend(factory(), config)
        resumed.restore(snapshot, pool)
        report = resumed.stream_finish()
        assert _digest(report, resumed.stream_requests) == _digest(
            reference, ref_requests
        )

    def test_mid_flash_maintenance_checkpoint(self, corpus_and_pool):
        vectors, pool = corpus_and_pool
        # The serving-flash test preset: a disturb threshold low enough
        # that refreshes fire at benchmark request counts.
        config = ServingConfig(
            policy=_policy(),
            flash=FlashConfig(
                read_disturb_threshold=200, ecc_hard_failure_prob=0.05
            ),
            **_BATCH_CFG,
        )

        def factory():
            return build_router(
                vectors, num_shards=2, config=NDSearchConfig.scaled()
            )

        ref_requests = _poisson_stream(zipf=1.1)
        reference = ServingFrontend(factory(), config).run(
            ref_requests, pool
        )

        live = ServingFrontend(factory(), config)
        requests = _poisson_stream(zipf=1.1)
        live.stream_begin(pool)
        live.stream_extend(requests)
        snapshot = None
        for request in requests:
            live.stream_step(request.arrival_s)
            if any(
                isinstance(entry[-1], FlashMaintenance)
                for entry in live._loop._heap
            ):
                snapshot = live.snapshot(kind="mid-maintenance")
                break
        assert snapshot is not None, (
            "scan never caught a pending FlashMaintenance — the flash "
            "config no longer refreshes, so this edge case is untested"
        )

        resumed = ServingFrontend(factory(), config)
        resumed.restore(snapshot, pool)
        report = resumed.stream_finish()
        assert _digest(report, resumed.stream_requests) == _digest(
            reference, ref_requests
        )


# ---- the digital twin ----------------------------------------------------

@pytest.fixture(scope="module")
def twin_run(corpus_and_pool):
    """One shared twin session over the replicated x4 pool: feed,
    advance, two null what-ifs, a scratch fallback, then finish."""
    vectors, pool = corpus_and_pool
    config = ServingConfig(policy=_policy(), **_BATCH_CFG)

    def factory():
        return build_router(
            vectors, num_shards=4, config=NDSearchConfig.scaled()
        )

    tracer = SpanTracer()
    twin = ServingTwin(factory, config, pool, window_s=0.05, tracer=tracer)
    requests = _poisson_stream()
    twin.feed(requests)
    checkpoints = twin.advance(requests[-1].arrival_s)
    null_first = twin.whatif()
    null_second = twin.whatif()
    hits_after_nulls = twin.cache.hits
    scratch = twin.whatif(last_windows=checkpoints + 5)
    reference = ServingFrontend(factory(), config).run(
        _poisson_stream(), pool
    )
    base = twin.finish()
    return SimpleNamespace(
        twin=twin, tracer=tracer, checkpoints=checkpoints,
        null_first=null_first, null_second=null_second,
        hits_after_nulls=hits_after_nulls, scratch=scratch,
        reference=reference, base=base,
    )


class TestServingTwin:
    def test_windows_checkpointed(self, twin_run):
        assert twin_run.checkpoints >= 2
        assert len(twin_run.twin.checkpoints) == twin_run.checkpoints
        indexes = [c.index for c in twin_run.twin.checkpoints]
        assert indexes == list(range(1, twin_run.checkpoints + 1))

    def test_null_whatif_is_byte_identical_to_scratch(self, twin_run):
        assert _report_bytes(twin_run.null_first) == _report_bytes(
            twin_run.reference
        )

    def test_repeat_whatif_hits_cache(self, twin_run):
        assert twin_run.hits_after_nulls == 1
        assert _report_bytes(twin_run.null_second) == _report_bytes(
            twin_run.null_first
        )

    def test_scratch_fallback_matches_scratch(self, twin_run):
        # Asking for more history than there are checkpoints replays
        # from scratch — and still reproduces the reference bytes.
        assert _report_bytes(twin_run.scratch) == _report_bytes(
            twin_run.reference
        )

    def test_fork_reports_never_carry_twin_stats(self, twin_run):
        assert twin_run.null_first.twin is None
        assert twin_run.null_second.twin is None
        assert twin_run.scratch.twin is None

    def test_base_report_identical_modulo_twin_field(self, twin_run):
        base = dict(twin_run.base.to_dict())
        ref = dict(twin_run.reference.to_dict())
        assert base.pop("twin") is not None
        ref.pop("twin")
        assert json.dumps(base, sort_keys=True) == json.dumps(
            ref, sort_keys=True
        )

    def test_base_report_twin_stats(self, twin_run):
        stats = twin_run.base.twin
        assert stats["checkpoints"] == twin_run.checkpoints
        assert stats["windows_simulated"] == twin_run.checkpoints
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 2
        assert stats["restores"] == 1
        assert stats["window_s"] == 0.05

    def test_twin_observability_rides_the_tracer(self, twin_run):
        names = [e["name"] for e in twin_run.tracer.events()]
        assert names.count("twin.checkpoint") == twin_run.checkpoints
        assert "twin.restore" in names
        assert "twin.cache_hit" in names

    def test_whatif_deltas_change_the_answer(
        self, twin_run, corpus_and_pool
    ):
        grown = twin_run.twin.whatif(add_replicas=2)
        assert _report_bytes(grown) != _report_bytes(twin_run.null_first)
        assert len(grown.shard_utilization) == 6
        assert grown.twin is None

    def test_whatif_validations(self, corpus_and_pool):
        vectors, pool = corpus_and_pool

        def replicated():
            return build_router(
                vectors, num_shards=2, config=NDSearchConfig.scaled()
            )

        def partitioned():
            return build_router(
                vectors, num_shards=4, config=NDSearchConfig.scaled(),
                mode=PARTITIONED, seed=35,
            )

        config = ServingConfig(policy=_policy(), **_BATCH_CFG)
        with pytest.raises(ValueError, match="window_s"):
            ServingTwin(replicated, config, pool, window_s=0.0)

        twin = ServingTwin(replicated, config, pool, window_s=0.05)
        with pytest.raises(ValueError, match="last_windows"):
            twin.whatif(last_windows=0)

        part_twin = ServingTwin(partitioned, config, pool, window_s=0.05)
        with pytest.raises(ValueError, match="replicated"):
            part_twin.whatif(add_replicas=1)

        scaled_config = ServingConfig(
            policy=_policy(),
            autoscale=AutoscalePolicy(
                min_replicas=1, max_replicas=4, interval_s=2e-3,
                high_utilization=0.7, high_queue_depth=8.0,
            ),
            **_BATCH_CFG,
        )
        scaled = ServingTwin(replicated, scaled_config, pool, window_s=0.05)
        with pytest.raises(ValueError, match="autoscaler"):
            scaled.whatif(add_replicas=1)

    def test_cache_key_covers_the_causal_inputs(self, corpus_and_pool):
        config = ServingConfig(policy=_policy(), **_BATCH_CFG)
        suffix = _poisson_stream()[:5]
        base = TwinCache.key(config, "d" * 64, 3, suffix)
        assert TwinCache.key(config, "d" * 64, 3, suffix) == base
        other_config = dataclasses.replace(config, nprobe=1)
        assert TwinCache.key(other_config, "d" * 64, 3, suffix) != base
        assert TwinCache.key(config, "e" * 64, 3, suffix) != base
        assert TwinCache.key(config, "d" * 64, 4, suffix) != base
        assert TwinCache.key(config, "d" * 64, 3, suffix[:-1]) != base

    def test_config_digest_is_repr_stable(self):
        a = ServingConfig(policy=_policy(), **_BATCH_CFG)
        b = ServingConfig(policy=_policy(), **_BATCH_CFG)
        assert config_digest(a) == config_digest(b)
        assert config_digest(a) != config_digest(
            dataclasses.replace(a, nprobe=2)
        )


# ---- ServingReport.twin round-trip (satellite: report surface) -----------

class TestReportTwinRoundTrip:
    def test_twin_field_round_trips(self, twin_run):
        payload = twin_run.base.to_dict()
        clone = ServingReport.from_dict(json.loads(json.dumps(payload)))
        assert clone.twin == twin_run.base.twin
        assert json.dumps(clone.to_dict(), sort_keys=True) == json.dumps(
            payload, sort_keys=True
        )
        assert "twin" in twin_run.base.format()
        assert str(twin_run.checkpoints) in twin_run.base.format()

    def test_pre_twin_payloads_still_load(self, twin_run):
        legacy = dict(twin_run.reference.to_dict())
        legacy.pop("twin")
        report = ServingReport.from_dict(legacy)
        assert report.twin is None
        assert "twin" not in report.format()
