"""Integration tests: Algorithm 1 through the functional hardware path.

The headline property: the NDP processing model — graph traversal on
the embedded cores, neighbor fetch via Vgenerator/LUNCSR, distance
computation inside the SiN engines reading real bytes from NAND page
buffers, bitonic top-k on the FPGA — returns exactly the same results
as the host-side reference beam search over the same graph.
"""

import numpy as np
import pytest

from repro.ann.search import greedy_beam_search, top_k_from_results
from repro.core import NDSearch, SchedulingFlags
from repro.core.processing_model import NDPProcessingModel
from repro.core.searssd import SearSSDDevice


def _host_reference(graph, queries, k, ef):
    ids = []
    dists = []
    for q in queries:
        results = greedy_beam_search(
            graph.vectors, graph.neighbors, q, [graph.entry_point], ef,
            graph.metric,
        )
        i, d = top_k_from_results(results, k)
        ids.append(i)
        dists.append(d)
    return np.stack(ids), np.stack(dists)


@pytest.fixture()
def ndsearch(small_hnsw, tiny_config):
    return NDSearch(index=small_hnsw, config=tiny_config)


class TestFunctionalEquivalence:
    def test_results_match_host_search(self, ndsearch, small_queries):
        ids, dists = ndsearch.search_batch_functional(small_queries[:6], k=5, ef=24)
        ref_ids, ref_dists = _host_reference(
            ndsearch.graph, small_queries[:6], k=5, ef=24
        )
        assert np.array_equal(ids, ndsearch.order[ref_ids])
        assert np.allclose(dists, ref_dists, rtol=1e-6)

    def test_equivalence_without_any_optimisation(
        self, small_hnsw, tiny_config, small_queries
    ):
        nd = NDSearch(
            index=small_hnsw,
            config=tiny_config.with_flags(SchedulingFlags.bare()),
        )
        ids, _ = nd.search_batch_functional(small_queries[:4], k=5, ef=16)
        ref_ids, _ = _host_reference(nd.graph, small_queries[:4], k=5, ef=16)
        assert np.array_equal(ids, nd.order[ref_ids])

    def test_equivalence_with_speculation_only(
        self, small_hnsw, tiny_config, small_queries
    ):
        nd = NDSearch(
            index=small_hnsw,
            config=tiny_config.with_flags(
                SchedulingFlags(reorder=False, multiplane=False,
                                dynamic_alloc=True, speculative=True)
            ),
        )
        ids, _ = nd.search_batch_functional(small_queries[:4], k=5, ef=16)
        ref_ids, _ = _host_reference(nd.graph, small_queries[:4], k=5, ef=16)
        assert np.array_equal(ids, nd.order[ref_ids])


class TestProcessingModelMechanics:
    def test_speculative_hits_recorded(self, small_graph, tiny_config):
        device = SearSSDDevice(small_graph, tiny_config)
        model = NDPProcessingModel(device, ef=16, k=5)
        queries = small_graph.vectors[:6] + 0.01
        model.run_batch(queries)
        assert model.counters["speculative_page_reads"] > 0
        assert model.counters["speculative_hits"] > 0

    def test_multiplane_groups_formed(self, small_graph, tiny_config):
        device = SearSSDDevice(small_graph, tiny_config)
        model = NDPProcessingModel(device, ef=16, k=5)
        model.run_batch(small_graph.vectors[:4])
        assert model.counters["multiplane_groups"] > 0

    def test_ef_must_cover_k(self, small_graph, tiny_config):
        device = SearSSDDevice(small_graph, tiny_config)
        with pytest.raises(ValueError):
            NDPProcessingModel(device, ef=4, k=8)

    def test_qpt_updates_counted(self, small_graph, tiny_config):
        device = SearSSDDevice(small_graph, tiny_config)
        model = NDPProcessingModel(device, ef=8, k=3)
        model.run_batch(small_graph.vectors[:3])
        assert model.counters["qpt_updates"] >= 3

    def test_device_counters_accumulate(self, small_graph, tiny_config):
        device = SearSSDDevice(small_graph, tiny_config)
        model = NDPProcessingModel(device, ef=8, k=3)
        model.run_batch(small_graph.vectors[:3])
        counters = device.total_counters()
        assert counters["distance_computations"] > 0
        assert counters["sorted_elements"] > 0
        assert counters["alloc_dispatches"] > 0
