"""Tests for exact search and the recall metric."""

import numpy as np
import pytest

from repro.ann import BruteForceIndex, recall_at_k
from repro.ann.distance import DistanceMetric


class TestBruteForce:
    def test_self_query_returns_self(self, small_vectors):
        bf = BruteForceIndex(small_vectors)
        ids, dists = bf.search(small_vectors[7], k=1)
        assert ids[0] == 7
        assert dists[0] == pytest.approx(0.0, abs=1e-5)

    def test_batch_matches_single(self, small_vectors, small_queries):
        bf = BruteForceIndex(small_vectors)
        batch_ids, batch_d = bf.search_batch(small_queries, 5)
        for i in range(len(small_queries)):
            ids, d = bf.search(small_queries[i], 5)
            assert np.array_equal(ids, batch_ids[i])

    def test_distances_sorted(self, small_vectors, small_queries):
        bf = BruteForceIndex(small_vectors)
        _, dists = bf.search_batch(small_queries, 10)
        assert np.all(np.diff(dists, axis=1) >= -1e-9)

    def test_k_clamped_to_dataset(self):
        vectors = np.random.default_rng(0).normal(size=(3, 4)).astype(np.float32)
        ids, _ = BruteForceIndex(vectors).search(vectors[0], k=10)
        assert ids.shape == (3,)

    def test_angular_metric(self, small_vectors):
        bf = BruteForceIndex(small_vectors, DistanceMetric.ANGULAR)
        ids, _ = bf.search(small_vectors[3] * 5.0, k=1)  # scale-invariant
        assert ids[0] == 3

    def test_invalid_inputs(self, small_vectors):
        with pytest.raises(ValueError):
            BruteForceIndex(np.zeros((0, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            BruteForceIndex(small_vectors).search(small_vectors[0], k=0)


class TestRecall:
    def test_perfect_recall(self):
        ids = np.array([[1, 2, 3], [4, 5, 6]])
        assert recall_at_k(ids, ids) == 1.0

    def test_order_irrelevant(self):
        approx = np.array([[3, 2, 1]])
        exact = np.array([[1, 2, 3]])
        assert recall_at_k(approx, exact) == 1.0

    def test_partial_recall(self):
        approx = np.array([[1, 2, 9]])
        exact = np.array([[1, 2, 3]])
        assert recall_at_k(approx, exact) == pytest.approx(2 / 3)

    def test_k_truncation(self):
        approx = np.array([[1, 9, 9, 9]])
        exact = np.array([[1, 2, 3, 4]])
        assert recall_at_k(approx, exact, k=1) == 1.0

    def test_padding_ignored(self):
        approx = np.array([[1, -1, -1]])
        exact = np.array([[1, 2, -1]])
        assert recall_at_k(approx, exact) == pytest.approx(0.5)

    def test_batch_mismatch_rejected(self):
        with pytest.raises(ValueError):
            recall_at_k(np.zeros((2, 3)), np.zeros((3, 3)))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            recall_at_k(np.zeros((1, 3)), np.zeros((1, 3)), k=0)
