"""Tests for batch-wise dynamic allocating (Section VI-B1)."""

import numpy as np
import pytest

from repro.core.dynamic_scheduling import (
    allocate_batch_to_luns,
    page_loads_with_sharing,
    page_loads_without_sharing,
)
from repro.core.placement import map_vertices


@pytest.fixture()
def placement(tiny_geometry):
    return map_vertices(600, tiny_geometry, vector_bytes=64)


class TestAllocation:
    def test_groups_by_lun(self, placement):
        pairs = [(q, v) for q in range(4) for v in range(0, 600, 50)]
        worklists = allocate_batch_to_luns(pairs, placement)
        for lun, wl in worklists.items():
            assert all(placement.lun[v] == lun for v in wl.vertices())

    def test_all_pairs_assigned(self, placement):
        pairs = [(q, v) for q in range(3) for v in range(0, 90, 3)]
        worklists = allocate_batch_to_luns(pairs, placement)
        total = sum(len(wl.pairs) for wl in worklists.values())
        assert total == len(pairs)

    def test_one_query_spans_luns(self, placement, tiny_geometry):
        vpp = placement.vectors_per_page
        spread = [0, vpp * tiny_geometry.planes_per_lun]  # different LUNs
        worklists = allocate_batch_to_luns([(0, v) for v in spread], placement)
        assert len(worklists) == 2
        assert all(0 in wl.queries() for wl in worklists.values())


class TestPageLoadSharing:
    def test_shared_load_counts_distinct_pages(self, placement):
        vpp = placement.vectors_per_page
        vertices = np.array([0, 1, 2, vpp, vpp + 1])  # two pages
        loads, _ = page_loads_with_sharing(vertices, placement)
        assert loads == 2

    def test_duplicates_free(self, placement):
        vertices = np.array([5, 5, 5])
        loads, _ = page_loads_with_sharing(vertices, placement)
        assert loads == 1

    def test_empty(self, placement):
        loads, merged = page_loads_with_sharing(np.array([], dtype=int), placement)
        assert loads == 0
        assert merged == 0

    def test_multiplane_merge_detected(self, placement, tiny_geometry):
        vpp = placement.vectors_per_page
        # Multiplane scheme: slots 0 and vpp are sibling planes, same page.
        vertices = np.array([0, vpp])
        loads, merged = page_loads_with_sharing(vertices, placement)
        assert loads == 2
        assert merged == 1

    def test_no_merge_across_luns(self, placement, tiny_geometry):
        vpp = placement.vectors_per_page
        per_lun = vpp * tiny_geometry.planes_per_lun
        vertices = np.array([0, per_lun])  # LUN 0 and LUN 1
        _, merged = page_loads_with_sharing(vertices, placement)
        assert merged == 0


class TestSharingBenefit:
    def test_cross_query_sharing_reduces_loads(self, placement):
        """The Fig. 15 effect: queries targeting the same pages share
        one sense under dynamic allocating."""
        base = np.arange(0, 40)
        per_query = [base.copy() for _ in range(8)]
        pooled = np.concatenate(per_query)
        shared, _ = page_loads_with_sharing(pooled, placement)
        unshared, _ = page_loads_without_sharing(per_query, placement)
        assert shared * 8 == unshared
        assert shared < unshared

    def test_disjoint_queries_gain_nothing(self, placement):
        vpp = placement.vectors_per_page
        per_query = [
            np.arange(q * vpp, (q + 1) * vpp) for q in range(4)
        ]  # each query its own page
        pooled = np.concatenate(per_query)
        shared, _ = page_loads_with_sharing(pooled, placement)
        unshared, _ = page_loads_without_sharing(per_query, placement)
        assert shared == unshared
