"""The discrete-event kernel: ordering, determinism, subscriptions."""

from __future__ import annotations

import pytest

from repro.sim.events import (
    AFTER_ARRIVALS,
    Arrival,
    BatchDeadline,
    Completion,
    DataMovement,
    EpochTick,
    Event,
    EventLoop,
    FlashMaintenance,
    StreamEnd,
)


def record_all(loop, log):
    for kind in (
        Arrival, BatchDeadline, Completion, DataMovement, EpochTick,
        FlashMaintenance, StreamEnd,
    ):
        loop.subscribe(kind, lambda e: log.append(e))


class TestOrdering:
    def test_time_order_dominates(self):
        loop, log = EventLoop(), []
        record_all(loop, log)
        loop.schedule(Arrival(time=2.0, payload="late"))
        loop.schedule(Arrival(time=1.0, payload="early"))
        loop.schedule(Completion(time=1.5))
        loop.run()
        assert [e.time for e in log] == [1.0, 1.5, 2.0]

    def test_same_instant_rank_order(self):
        """At one timestamp: data movement < deadline < completion <
        flash maintenance < epoch tick < arrival < stream end — the
        serving invariants (a migration's routing flip commits before a
        same-instant deadline dispatches; a read-disturb refresh books
        its GC pause after the read that tripped it retires but before
        any same-instant arrival dispatches into it)."""
        loop, log = EventLoop(), []
        record_all(loop, log)
        t = 3.0
        loop.schedule(StreamEnd(time=t))
        loop.schedule(Arrival(time=t))
        loop.schedule(EpochTick(time=t))
        loop.schedule(FlashMaintenance(time=t))
        loop.schedule(Completion(time=t))
        loop.schedule(BatchDeadline(time=t))
        loop.schedule(DataMovement(time=t))
        loop.run()
        assert [type(e) for e in log] == [
            DataMovement, BatchDeadline, Completion, FlashMaintenance,
            EpochTick, Arrival, StreamEnd,
        ]

    def test_flash_maintenance_between_completion_and_arrival(self):
        """The rank a refresh needs in isolation: scheduled at a batch's
        completion instant it runs after that Completion retires (the
        reads that crossed the disturb threshold exist) and before the
        same-instant Arrival (the pause occupies the device before the
        next dispatch queries it)."""
        loop, log = EventLoop(), []
        record_all(loop, log)
        loop.schedule(Arrival(time=1.0))
        loop.schedule(FlashMaintenance(time=1.0, payload=(0, [(0, 0, 1)])))
        loop.schedule(Completion(time=1.0))
        loop.run()
        assert [type(e) for e in log] == [Completion, FlashMaintenance, Arrival]
        assert log[1].payload == (0, [(0, 0, 1)])

    def test_after_arrivals_rank_sorts_behind_arrivals(self):
        """A greedy-close timer scheduled with AFTER_ARRIVALS fires
        after every same-instant arrival but before StreamEnd."""
        loop, log = EventLoop(), []
        record_all(loop, log)
        loop.schedule(BatchDeadline(time=1.0), rank=AFTER_ARRIVALS)
        loop.schedule(Arrival(time=1.0, payload="a"))
        loop.schedule(Arrival(time=1.0, payload="b"))
        loop.schedule(StreamEnd(time=1.0))
        loop.run()
        assert [type(e) for e in log] == [
            Arrival, Arrival, BatchDeadline, StreamEnd,
        ]

    def test_schedule_order_breaks_full_ties(self):
        loop, log = EventLoop(), []
        record_all(loop, log)
        loop.schedule(Arrival(time=1.0, payload=0))
        loop.schedule(Arrival(time=1.0, payload=1))
        loop.schedule(Arrival(time=1.0, payload=2))
        loop.run()
        assert [e.payload for e in log] == [0, 1, 2]

    def test_deterministic_across_runs(self):
        def run():
            loop, log = EventLoop(), []
            record_all(loop, log)
            for i in range(20):
                loop.schedule(Arrival(time=float(i % 5), payload=i))
                loop.schedule(Completion(time=float((i * 3) % 5), payload=i))
            loop.run()
            return [(type(e).__name__, e.time, getattr(e, "payload", None))
                    for e in log]

        assert run() == run()


class TestClockAndScheduling:
    def test_clock_advances_to_event_times(self):
        loop, seen = EventLoop(), []
        loop.subscribe(Arrival, lambda e: seen.append(loop.now))
        loop.schedule(Arrival(time=1.0))
        loop.schedule(Arrival(time=4.0))
        loop.run()
        assert seen == [1.0, 4.0]
        assert loop.now == 4.0

    def test_scheduling_in_the_past_raises(self):
        loop = EventLoop()
        loop.subscribe(Arrival, lambda e: None)
        loop.schedule(Arrival(time=5.0))
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule(Arrival(time=4.0))

    def test_handler_can_schedule_same_time_followups(self):
        loop, log = EventLoop(), []

        def on_arrival(event):
            log.append(("arrival", loop.now))
            if not any(k == "completion" for k, _ in log):
                loop.schedule(Completion(time=loop.now))

        loop.subscribe(Arrival, on_arrival)
        loop.subscribe(Completion, lambda e: log.append(("completion", loop.now)))
        loop.schedule(Arrival(time=2.0))
        loop.schedule(Arrival(time=3.0))
        loop.run()
        # The same-time completion fires before the later arrival.
        assert log == [("arrival", 2.0), ("completion", 2.0), ("arrival", 3.0)]

    def test_run_until_leaves_later_events_pending(self):
        loop, log = EventLoop(), []
        record_all(loop, log)
        loop.schedule(Arrival(time=1.0))
        loop.schedule(Arrival(time=10.0))
        assert loop.run(until=5.0) == 1
        assert len(loop) == 1
        assert loop.now == 5.0
        assert loop.run() == 1
        assert loop.now == 10.0

    def test_stop_halts_processing(self):
        loop, log = EventLoop(), []
        loop.subscribe(Arrival, lambda e: (log.append(e), loop.stop()))
        loop.schedule(Arrival(time=1.0))
        loop.schedule(Arrival(time=2.0))
        loop.run()
        assert len(log) == 1
        assert len(loop) == 1


class TestSubscriptions:
    def test_unhandled_event_raises(self):
        loop = EventLoop()
        loop.schedule(Arrival(time=0.0))
        with pytest.raises(LookupError):
            loop.run()

    def test_exact_type_match_no_base_class_fanout(self):
        loop, log = EventLoop(), []
        loop.subscribe(Event, lambda e: log.append("base"))
        loop.subscribe(Arrival, lambda e: log.append("arrival"))
        loop.schedule(Arrival(time=0.0))
        loop.run()
        assert log == ["arrival"]

    def test_multiple_handlers_in_subscription_order(self):
        loop, log = EventLoop(), []
        loop.subscribe(Arrival, lambda e: log.append("first"))
        loop.subscribe(Arrival, lambda e: log.append("second"))
        loop.schedule(Arrival(time=0.0))
        loop.run()
        assert log == ["first", "second"]

    def test_subscribe_rejects_non_event_types(self):
        loop = EventLoop()
        with pytest.raises(TypeError):
            loop.subscribe(int, lambda e: None)

    def test_processed_counter(self):
        loop = EventLoop()
        loop.subscribe(Arrival, lambda e: None)
        for i in range(5):
            loop.schedule(Arrival(time=float(i)))
        assert loop.run() == 5
        assert loop.processed == 5

class TestTelemetry:
    def test_counts_per_event_type(self):
        loop = EventLoop()
        loop.subscribe(Arrival, lambda e: None)
        loop.subscribe(Completion, lambda e: None)
        for i in range(3):
            loop.schedule(Arrival(time=float(i)))
        loop.schedule(Completion(time=1.5))
        loop.run()
        assert loop.counts == {"Arrival": 3, "Completion": 1}

    def test_counts_accumulate_across_runs(self):
        loop = EventLoop()
        loop.subscribe(Arrival, lambda e: None)
        loop.schedule(Arrival(time=0.0))
        loop.run(until=0.5)
        loop.schedule(Arrival(time=1.0))
        loop.run()
        assert loop.counts == {"Arrival": 2}

    def test_observer_sees_events_before_handlers(self):
        loop, log = EventLoop(), []
        loop.observer = lambda e: log.append(("observed", type(e).__name__))
        loop.subscribe(Arrival, lambda e: log.append(("handled", "Arrival")))
        loop.schedule(Arrival(time=0.0))
        loop.run()
        assert log == [("observed", "Arrival"), ("handled", "Arrival")]

    def test_observer_sees_current_clock(self):
        loop, seen = EventLoop(), []
        loop.observer = lambda e: seen.append(loop.now)
        loop.subscribe(Arrival, lambda e: None)
        loop.schedule(Arrival(time=2.5))
        loop.run()
        assert seen == [2.5]
