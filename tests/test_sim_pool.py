"""The warm worker pool: determinism, crash recovery, clean shutdown.

The contract :mod:`repro.sim.pool` offers the sweep drivers
(``bench_serving``, ``profile_serving``, the randomized property job):

* pooled output is **byte-identical** to the serial sweep for the same
  seeds — results merge in row order, never completion order;
* rows with the same affinity key share one warm worker (that is what
  makes the pool *warm*: per-process caches are reused across rows);
* a worker that dies mid-row is respawned and the row retried exactly
  once; a task that raises is deterministic and never retried;
* shutdown leaves no orphan processes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.sim.pool import (
    POOL_WORKERS_ENV,
    PoolTaskError,
    WorkerCrashError,
    WorkerPool,
    run_rows,
    workers_from_env,
)

TASKS_DIR = Path(__file__).resolve().parent


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


def test_results_merge_in_row_order_and_keys_pin_workers():
    rows = [
        (f"key{i % 3}", "pool_tasks:echo", {"value": i}) for i in range(9)
    ]
    with WorkerPool(2, path=[TASKS_DIR]) as pool:
        values = pool.run(rows)
        assert values == list(range(9))
        pids = pool.run(
            [
                (f"key{i % 3}", "pool_tasks:worker_pid", {})
                for i in range(9)
            ]
        )
    # Same affinity key -> same warm worker, every time.
    by_key: dict[str, set[int]] = {}
    for i, pid in enumerate(pids):
        by_key.setdefault(f"key{i % 3}", set()).add(pid)
    assert all(len(owners) == 1 for owners in by_key.values()), by_key
    # Three keys round-robin over two workers: both workers served.
    assert len(set(pids)) == 2


def test_pooled_sweep_byte_identical_to_serial(pool_workers):
    rows = [
        ("x1", "pool_tasks:serving_digest", {"policy": "batch", "rate": 20000.0}),
        ("x1", "pool_tasks:serving_digest", {"policy": "greedy", "rate": 20000.0}),
        ("x1-lo", "pool_tasks:serving_digest", {"policy": "batch", "rate": 500.0}),
    ]
    serial = run_rows(rows, 0, path=[TASKS_DIR])
    pooled = run_rows(rows, pool_workers or 2, path=[TASKS_DIR])
    assert json.dumps(pooled, sort_keys=True) == json.dumps(
        serial, sort_keys=True
    )


def test_worker_crash_retries_row_once_on_fresh_worker(tmp_path):
    marker = tmp_path / "crashed-once"
    with WorkerPool(1, path=[TASKS_DIR]) as pool:
        first_pid = pool.run([("k", "pool_tasks:worker_pid", {})])[0]
        results = pool.run(
            [
                ("k", "pool_tasks:crash_once",
                 {"marker": str(marker), "value": 42}),
                ("k", "pool_tasks:echo", {"value": "after"}),
            ]
        )
        assert results == [42, "after"]
        assert pool.respawns == 1
        assert pool.retries == 1
        # The retry ran on a fresh process, not the dead one.
        retry_pid = pool.run([("k", "pool_tasks:worker_pid", {})])[0]
        assert retry_pid != first_pid
    assert marker.exists()


def test_row_that_always_crashes_surfaces_after_second_death():
    with WorkerPool(1, path=[TASKS_DIR]) as pool:
        with pytest.raises(WorkerCrashError):
            pool.run([("k", "pool_tasks:always_crash", {})])
        assert pool.respawns == 2


def test_task_exception_is_not_retried():
    with WorkerPool(1, path=[TASKS_DIR]) as pool:
        with pytest.raises(PoolTaskError, match="deterministic failure"):
            pool.run(
                [("k", "pool_tasks:boom", {"message": "deterministic failure"})]
            )
        assert pool.retries == 0
        assert pool.respawns == 0
        # The worker survived the exception and keeps serving.
        assert pool.run([("k", "pool_tasks:echo", {"value": 5})]) == [5]


def test_shutdown_leaves_no_orphans():
    pool = WorkerPool(2, path=[TASKS_DIR])
    pids = pool.run(
        [(f"k{i}", "pool_tasks:worker_pid", {}) for i in range(2)]
    )
    assert len(set(pids)) == 2
    assert all(_alive(pid) for pid in pids)
    pool.close()
    assert not any(_alive(pid) for pid in pids)
    pool.close()  # idempotent
    with pytest.raises(RuntimeError):
        pool.run([("k", "pool_tasks:echo", {"value": 1})])


def test_workers_from_env(monkeypatch):
    monkeypatch.delenv(POOL_WORKERS_ENV, raising=False)
    assert workers_from_env() == 0
    assert workers_from_env(default=3) == 3
    monkeypatch.setenv(POOL_WORKERS_ENV, "4")
    assert workers_from_env() == 4
    monkeypatch.setenv(POOL_WORKERS_ENV, "-2")
    assert workers_from_env() == 0
    monkeypatch.setenv(POOL_WORKERS_ENV, "junk")
    assert workers_from_env(default=1) == 1


def test_serial_fallback_runs_in_process():
    rows = [("k", "pool_tasks:worker_pid", {})]
    assert run_rows(rows, 0, path=[TASKS_DIR]) == [os.getpid()]
