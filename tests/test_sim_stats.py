"""Unit tests for counters and SimResult."""

import pytest

from repro.sim.stats import Counters, SimResult


class TestCounters:
    def test_missing_key_reads_zero(self):
        assert Counters()["page_reads"] == 0

    def test_increment_and_merge(self):
        a = Counters()
        a["page_reads"] += 3
        b = Counters({"page_reads": 2, "dram_accesses": 5})
        merged = a.merged(b)
        assert merged["page_reads"] == 5
        assert merged["dram_accesses"] == 5
        # merged() does not mutate either operand
        assert a["page_reads"] == 3
        assert b["page_reads"] == 2


def _result(time_s=0.5, batch=100, **busy):
    return SimResult(
        platform="cpu",
        algorithm="hnsw",
        dataset="sift-1b",
        batch_size=batch,
        sim_time_s=time_s,
        component_busy_s=busy,
    )


class TestSimResult:
    def test_qps(self):
        assert _result(0.5, 100).qps == pytest.approx(200.0)

    def test_qps_zero_time(self):
        assert _result(0.0).qps == 0.0

    def test_speedup_over(self):
        fast = _result(0.1)
        slow = _result(1.0)
        assert fast.speedup_over(slow) == pytest.approx(10.0)

    def test_qps_per_watt_requires_power(self):
        r = _result()
        assert r.qps_per_watt == 0.0
        r.power_w = 50.0
        assert r.qps_per_watt == pytest.approx(r.qps / 50.0)

    def test_breakdown_fractions_sum_to_one(self):
        r = _result(io=0.3, compute=0.1)
        frac = r.breakdown_fractions()
        assert sum(frac.values()) == pytest.approx(1.0)
        assert frac["io"] == pytest.approx(0.75)

    def test_breakdown_empty(self):
        assert _result().breakdown_fractions() == {}
