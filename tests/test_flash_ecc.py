"""Unit tests for the ECC / BER model (paper Fig. 18)."""

import numpy as np
import pytest

from repro.flash.ecc import BERModel, LDPCModel, inject_bit_errors


class TestBERModel:
    def test_plane_count(self):
        model = BERModel(n_planes=512)
        assert model.plane_ber.shape == (512,)

    def test_mean_near_target(self):
        model = BERModel(n_planes=2048, mean_ber=1e-6)
        # Lognormal with sigma 0.45: mean within a factor ~1.2 of median.
        assert 0.7e-6 < model.summary()["median"] < 1.4e-6

    def test_distribution_has_tail(self):
        # The Fig. 18(a) distribution: p95 clearly above the median.
        s = BERModel(n_planes=2048).summary()
        assert s["p95"] > 1.5 * s["median"]

    def test_deterministic_given_seed(self):
        a = BERModel(n_planes=64, seed=1)
        b = BERModel(n_planes=64, seed=1)
        assert np.array_equal(a.plane_ber, b.plane_ber)

    def test_histogram_covers_all_planes(self):
        model = BERModel(n_planes=128)
        counts, _ = model.histogram(bins=10)
        assert counts.sum() == 128

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BERModel(n_planes=0)
        with pytest.raises(ValueError):
            BERModel(n_planes=4, mean_ber=2.0)


class TestLDPCModel:
    def test_zero_failure_prob_never_fails(self):
        model = LDPCModel(hard_failure_prob=0.0)
        assert all(model.decode_page() for _ in range(100))

    def test_certain_failure(self):
        model = LDPCModel(hard_failure_prob=1.0)
        assert not any(model.decode_page() for _ in range(10))

    def test_failure_rate_statistics(self):
        model = LDPCModel(hard_failure_prob=0.3, seed=3)
        failures = sum(1 for _ in range(20000) if not model.decode_page())
        assert failures / 20000 == pytest.approx(0.3, abs=0.02)

    def test_deterministic_replay(self):
        a = LDPCModel(hard_failure_prob=0.5, seed=9)
        b = LDPCModel(hard_failure_prob=0.5, seed=9)
        assert [a.decode_page() for _ in range(50)] == [
            b.decode_page() for _ in range(50)
        ]

    def test_reset_restores_stream(self):
        model = LDPCModel(hard_failure_prob=0.5, seed=9)
        first = [model.decode_page() for _ in range(20)]
        model.reset()
        assert [model.decode_page() for _ in range(20)] == first

    def test_expected_failures(self):
        assert LDPCModel(hard_failure_prob=0.1).expected_failures(100) == 10.0

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            LDPCModel(hard_failure_prob=1.5)


class TestBitErrorInjection:
    def test_error_count_matches_rate(self):
        rng = np.random.default_rng(0)
        page = np.zeros(16384, dtype=np.uint8)
        corrupted, n = inject_bit_errors(page, 1e-3, rng)
        expected = 16384 * 8 * 1e-3
        assert 0.5 * expected < n < 1.5 * expected
        # Flipped bits actually changed the buffer.
        assert int(np.unpackbits(corrupted).sum()) == n

    def test_zero_rate_is_identity(self):
        rng = np.random.default_rng(0)
        page = np.arange(256, dtype=np.uint8)
        corrupted, n = inject_bit_errors(page, 0.0, rng)
        assert n == 0
        assert np.array_equal(corrupted, page)

    def test_requires_uint8(self):
        rng = np.random.default_rng(0)
        with pytest.raises(TypeError):
            inject_bit_errors(np.zeros(8, dtype=np.float32), 0.1, rng)

    def test_original_untouched(self):
        rng = np.random.default_rng(0)
        page = np.zeros(1024, dtype=np.uint8)
        inject_bit_errors(page, 0.05, rng)
        assert page.sum() == 0
