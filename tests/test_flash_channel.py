"""Tests for the Fig. 9(a) channel command-workflow simulator."""

import pytest

from repro.flash.channel import (
    ChannelSimulator,
    LunOperation,
)
from repro.flash.timing import FlashTiming


@pytest.fixture()
def sim(tiny_geometry):
    return ChannelSimulator(geometry=tiny_geometry, timing=FlashTiming())


class TestWorkflowMechanics:
    def test_empty_sequence(self, sim):
        result = sim.run_sequence([])
        assert result.makespan_s == 0.0
        assert result.bus_bytes == 0

    def test_duplicate_lun_rejected(self, sim):
        ops = [
            LunOperation(lun=0, payload_bytes=8, array_time_s=1e-6),
            LunOperation(lun=0, payload_bytes=8, array_time_s=1e-6),
        ]
        with pytest.raises(ValueError):
            sim.run_sequence(ops)

    def test_array_times_overlap(self, sim):
        """Multi-LUN interleaving: two LUNs' tR overlap, so the
        sequence finishes far sooner than serial execution."""
        t_read = sim.timing.read_page_s
        one = sim.multi_lun_read([0])
        two = sim.multi_lun_read([0, 1])
        assert two.makespan_s < one.makespan_s + t_read
        assert two.lun_busy_s == pytest.approx(2 * t_read)

    def test_bus_serialises_transfers(self, sim, tiny_geometry):
        result = sim.multi_lun_read([0, 1, 2, 3])
        page_time = tiny_geometry.page_size / sim.timing.channel_bus_bw
        assert result.bus_busy_s > 4 * page_time  # transfers + commands
        assert result.bus_bytes == 4 * tiny_geometry.page_size

    def test_makespan_at_least_array_plus_transfer(self, sim, tiny_geometry):
        result = sim.multi_lun_read([0])
        floor = sim.timing.read_page_s + (
            tiny_geometry.page_size / sim.timing.channel_bus_bw
        )
        assert result.makespan_s > floor

    def test_utilization_bounded(self, sim):
        result = sim.multi_lun_read([0, 1])
        assert 0.0 < result.bus_utilization <= 1.0


class TestFilteringClaim:
    def test_search_moves_far_fewer_bytes(self, sim, tiny_geometry):
        """The paper's Section IV-A claim: SearSSD's result lists can
        be as little as ~1/32 of the page traffic a SmartSSD-style
        design ships."""
        luns = [0, 1, 2, 3]
        read = sim.multi_lun_read(luns)
        search = sim.multi_lun_search(luns, results_per_lun=4, dim=128)
        assert search.bus_bytes < read.bus_bytes / 30

    def test_filtering_ratio_reaches_32x(self, sim):
        ratio = sim.filtering_ratio([0, 1], results_per_lun=4, dim=128)
        assert ratio >= 32.0

    def test_search_finishes_sooner(self, sim):
        luns = [0, 1, 2, 3]
        read = sim.multi_lun_read(luns)
        search = sim.multi_lun_search(luns, results_per_lun=8, dim=64)
        assert search.makespan_s < read.makespan_s

    def test_ratio_shrinks_with_more_results(self, sim):
        few = sim.filtering_ratio([0, 1], results_per_lun=2, dim=128)
        many = sim.filtering_ratio([0, 1], results_per_lun=32, dim=128)
        assert many < few
