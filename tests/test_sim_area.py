"""Unit tests for the area/storage-density model (Section VII-B)."""

import pytest

from repro.sim.area import (
    AreaModel,
    DS_C_AREA_MM2,
    DS_CP_AREA_MM2,
    SEARSSD_AREA_TABLE,
)


class TestAreaModel:
    def test_total_area_matches_paper(self):
        assert AreaModel().total_area_mm2 == pytest.approx(43.09)

    def test_area_saving_vs_ds_cp(self):
        # Paper: 82% less than DS-cp.
        saving = AreaModel().area_saving_vs(DS_CP_AREA_MM2)
        assert saving == pytest.approx(0.82, abs=0.01)

    def test_area_saving_vs_ds_c(self):
        # Paper: 87% less than DS-c.
        saving = AreaModel().area_saving_vs(DS_C_AREA_MM2)
        assert saving == pytest.approx(0.87, abs=0.01)

    def test_storage_density_matches_paper(self):
        # Paper: 6 Gb/mm^2 degrades to 5.64 Gb/mm^2 for 512 GB.
        density = AreaModel().storage_density_gb_per_mm2(512.0)
        assert density == pytest.approx(5.64, abs=0.03)

    def test_density_degradation_about_six_percent(self):
        deg = AreaModel().density_degradation(512.0)
        assert 0.04 < deg < 0.08

    def test_density_improves_with_capacity(self):
        model = AreaModel()
        assert model.storage_density_gb_per_mm2(
            1024.0
        ) > model.storage_density_gb_per_mm2(256.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            AreaModel().area_saving_vs(0.0)
        with pytest.raises(ValueError):
            AreaModel().storage_density_gb_per_mm2(-1.0)

    def test_component_rows_complete(self):
        names = {c.name for c in SEARSSD_AREA_TABLE}
        assert "mac_group" in names
        assert "ecc_decoder" in names
        assert len(SEARSSD_AREA_TABLE) == 8
