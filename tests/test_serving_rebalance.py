"""Partitioned-pool rebalancing: policy, migrations, determinism."""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.config import NDSearchConfig
from repro.serving import (
    AutoscalePolicy,
    BatchPolicy,
    PoissonArrivals,
    QueryStream,
    RebalancePolicy,
    Rebalancer,
    ServingConfig,
    ServingFrontend,
    build_router,
)
from repro.serving.request import COMPLETED
from repro.serving.sharding import PARTITIONED

CORPUS, DIM, POOL, REQUESTS, K = 800, 16, 128, 400, 10


@pytest.fixture(scope="module")
def config():
    return NDSearchConfig.scaled()


@pytest.fixture(scope="module")
def corpus_and_pool():
    from repro.data.synthetic import clustered_gaussian, split_queries

    vectors = clustered_gaussian(CORPUS, DIM, seed=31)
    return vectors, split_queries(vectors, POOL, seed=32)


def skewed_stream(rate=16000.0, zipf=1.2, seed=33, slo_s=4e-3):
    return QueryStream(
        PoissonArrivals(rate),
        pool_size=POOL,
        n_requests=REQUESTS,
        k=K,
        zipf_exponent=zipf,
        seed=seed,
        slo_s=slo_s,
    ).generate()


def run_partitioned(
    vectors, pool, config, rebalance, *, nprobe=1, clusters_per_shard=2,
    stream=None,
):
    router = build_router(
        vectors, num_shards=4, config=config, mode=PARTITIONED, seed=35,
        clusters_per_shard=clusters_per_shard,
    )
    frontend = ServingFrontend(
        router,
        ServingConfig(
            policy=BatchPolicy(max_batch_size=16, max_wait_s=2e-3),
            cache_capacity=0,
            coalesce=False,
            nprobe=nprobe,
            rebalance=rebalance,
        ),
    )
    requests = stream if stream is not None else skewed_stream()
    report = frontend.run(requests, pool)
    return report, requests, frontend


REBALANCE = RebalancePolicy(
    interval_s=2e-3, skew_threshold=0.25, migration_gbps=1.0
)


class TestPolicyValidation:
    def test_policy_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            RebalancePolicy(interval_s=0.0)
        with pytest.raises(ValueError):
            RebalancePolicy(skew_threshold=0.0)
        with pytest.raises(ValueError):
            RebalancePolicy(migration_gbps=0.0)
        with pytest.raises(ValueError):
            RebalancePolicy(max_concurrent=0)
        with pytest.raises(ValueError):
            RebalancePolicy(min_window_queries=-1)

    def test_rebalancer_needs_two_devices(self):
        with pytest.raises(ValueError):
            Rebalancer(REBALANCE, num_shards=1, num_clusters=2)

    def test_rebalance_requires_partitioned_mode(
        self, corpus_and_pool, config
    ):
        vectors, _ = corpus_and_pool
        replicated = build_router(vectors, num_shards=2, config=config)
        with pytest.raises(ValueError):
            ServingFrontend(
                replicated, ServingConfig(rebalance=REBALANCE)
            )


class TestDecisions:
    """Unit-level decision logic on synthetic signals."""

    def _armed(self, num_shards=2, num_clusters=4):
        r = Rebalancer(REBALANCE, num_shards, num_clusters)
        r.arm(0.0, [0.0] * num_shards)
        return r

    def test_skew_triggers_gap_minimising_migration(self):
        r = self._armed()
        cluster_shard = np.array([0, 0, 1, 1])
        # Shard 0 is hot; cluster 1 carries most of its load, but
        # moving cluster 0 (1/4 of the load) closes the gap best:
        # gap 1.0, load(c0) = 0.25 -> residual 0.5; load(c1) = 0.75
        # -> residual |1.0 - 1.5| = 0.5... tie broken by lower id.
        for cluster, n in ((0, 10), (1, 30)):
            r.observe_cluster_queries(cluster, n)
        window = REBALANCE.interval_s
        proposals = r.decide(window, [window, 0.0], cluster_shard)
        assert len(proposals) == 1
        p = proposals[0]
        assert (p.source, p.dest) == (0, 1)
        assert p.cluster == 0  # residual tie -> deterministic lowest id
        assert p.utilization_gap == pytest.approx(1.0)

    def test_gap_minimising_cluster_wins_among_several(self):
        r = self._armed(num_shards=2, num_clusters=4)
        cluster_shard = np.array([0, 0, 0, 1])
        # Shard 0 at util 1.0 vs 0.0: cluster loads 0.1 / 0.5 / 0.4
        # leave residual gaps 0.8 / 0.0 / 0.2 -> cluster 1 moves.
        for cluster, n in ((0, 2), (1, 10), (2, 8)):
            r.observe_cluster_queries(cluster, n)
        window = REBALANCE.interval_s
        proposals = r.decide(window, [window, 0.0], cluster_shard)
        assert proposals[0].cluster == 1

    def test_quiet_window_and_low_skew_do_nothing(self):
        r = self._armed()
        cluster_shard = np.array([0, 0, 1, 1])
        window = REBALANCE.interval_s
        # Deep skew but almost no queries: signal untrusted.
        r.observe_cluster_queries(0, REBALANCE.min_window_queries - 1)
        assert r.decide(window, [window, 0.0], cluster_shard) == []
        # Plenty of queries but balanced load (busy_s is cumulative:
        # both devices add half a window since the last epoch):
        # nothing to fix.
        for cluster in (0, 1, 2, 3):
            r.observe_cluster_queries(cluster, 10)
        assert (
            r.decide(
                2 * window, [1.5 * window, 0.5 * window], cluster_shard
            )
            == []
        )

    def test_single_cluster_source_never_migrates(self):
        r = self._armed(num_shards=2, num_clusters=2)
        cluster_shard = np.array([0, 1])
        r.observe_cluster_queries(0, 100)
        window = REBALANCE.interval_s
        assert r.decide(window, [window, 0.0], cluster_shard) == []

    def test_max_concurrent_caps_inflight(self):
        from repro.serving.rebalance import Migration

        r = self._armed()
        cluster_shard = np.array([0, 0, 1, 1])
        r.begin(
            Migration(
                cluster=2, source=1, dest=0, decided_s=0.0, complete_s=1.0,
                bytes=10, vectors=1, utilization_gap=0.5,
            )
        )
        for cluster in (0, 1):
            r.observe_cluster_queries(cluster, 20)
        window = REBALANCE.interval_s
        assert r.decide(window, [window, 0.0], cluster_shard) == []
        r.finish(r.migrations[0])
        for cluster in (0, 1):
            r.observe_cluster_queries(cluster, 20)
        assert r.decide(2 * window, [2 * window, 0.0], cluster_shard)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def runs(self, corpus_and_pool, config):
        vectors, pool = corpus_and_pool
        static = run_partitioned(vectors, pool, config, None)
        rebalanced = run_partitioned(vectors, pool, config, REBALANCE)
        return static, rebalanced

    def test_migrations_happen_and_are_recorded(self, runs):
        (_, _, _), (report, _, frontend) = runs
        assert report.rebalance_events
        assert len(report.cluster_map_final) == 8
        for event in report.rebalance_events:
            assert event["complete_s"] > event["decided_s"]
            assert event["bytes"] > 0
            assert event["vectors"] > 0
            assert event["source"] != event["dest"]
            assert event["utilization_gap"] > REBALANCE.skew_threshold
        # Replaying the migration log over the initial round-robin
        # placement reproduces the final map (flips really committed).
        placement = [c % 4 for c in range(8)]
        for event in report.rebalance_events:
            assert placement[event["cluster"]] == event["source"]
            placement[event["cluster"]] = event["dest"]
        assert tuple(placement) == report.cluster_map_final
        assert frontend.rebalancer.migrations

    def test_migration_never_changes_results(self, runs):
        """Placement moves timing, not data: every request's top-k is
        identical with and without rebalancing."""
        (_, static_requests, _), (_, reb_requests, _) = runs
        assert len(static_requests) == len(reb_requests)
        for a, b in zip(static_requests, reb_requests):
            assert a.outcome == b.outcome == COMPLETED
            np.testing.assert_array_equal(a.result_ids, b.result_ids)
            np.testing.assert_array_equal(a.result_dists, b.result_dists)

    def test_rebalanced_pool_beats_static_under_skew(self, runs):
        """The acceptance shape: under skewed Zipfian load the
        rebalanced pool holds a lower p99 and a higher goodput than
        the static placement."""
        (static, _, _), (rebalanced, _, _) = runs
        assert rebalanced.latency_p99_s < static.latency_p99_s
        assert rebalanced.goodput_qps > static.goodput_qps
        # The win comes from balance: the static pool's hottest device
        # is strictly hotter than the rebalanced pool's hottest.
        assert max(rebalanced.shard_utilization) < max(
            static.shard_utilization
        )

    def test_migration_cost_is_booked_on_both_devices(
        self, corpus_and_pool, config
    ):
        """Data movement occupies the source and destination timelines:
        with an absurdly slow migration link, serving gets slower, not
        faster (the cost is real, not free)."""
        vectors, pool = corpus_and_pool
        free_ish = run_partitioned(
            vectors, pool, config,
            RebalancePolicy(
                interval_s=2e-3, skew_threshold=0.25, migration_gbps=1000.0,
            ),
        )[0]
        expensive = run_partitioned(
            vectors, pool, config,
            RebalancePolicy(
                interval_s=2e-3, skew_threshold=0.25, migration_gbps=1e-3,
            ),
        )[0]
        assert expensive.latency_p99_s > free_ish.latency_p99_s


class TestDeterminism:
    """Same seed + config twice -> byte-identical reports (the event
    kernel's (time, rank, seq) order leaves nothing to chance), under
    the stateful controllers too (autoscale, rebalance)."""

    @staticmethod
    def _digest(report, requests) -> str:
        h = hashlib.sha256()
        for r in requests:
            h.update(
                repr(
                    (r.request_id, r.outcome, r.batched_s, r.start_s,
                     r.completion_s)
                ).encode()
            )
            if r.result_ids is not None:
                h.update(r.result_ids.tobytes())
        h.update(repr(report).encode())
        return h.hexdigest()

    def test_rebalanced_run_is_bit_reproducible(
        self, corpus_and_pool, config
    ):
        vectors, pool = corpus_and_pool

        def once():
            report, requests, _ = run_partitioned(
                vectors, pool, config, REBALANCE, stream=skewed_stream()
            )
            return self._digest(report, requests)

        assert once() == once()

    def test_autoscaled_run_is_bit_reproducible(
        self, corpus_and_pool, config
    ):
        vectors, pool = corpus_and_pool

        def once():
            router = build_router(vectors, num_shards=1, config=config)
            frontend = ServingFrontend(
                router,
                ServingConfig(
                    policy=BatchPolicy(max_batch_size=4, max_wait_s=2e-3),
                    cache_capacity=0,
                    coalesce=False,
                    admission_capacity=48,
                    autoscale=AutoscalePolicy(
                        min_replicas=1, max_replicas=4, interval_s=2e-3,
                        high_utilization=0.7, high_queue_depth=8.0,
                    ),
                ),
            )
            requests = skewed_stream(rate=25000.0, zipf=0.0, slo_s=None)
            report = frontend.run(requests, pool)
            return self._digest(report, requests)

        assert once() == once()
