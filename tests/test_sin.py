"""Tests for the SiN engines / LUN-level accelerators."""

import numpy as np
import pytest

from repro.ann.distance import DistanceMetric, distances_to_query
from repro.core.searssd import SearSSDDevice
from repro.flash.commands import DistanceType, SearchPage


@pytest.fixture()
def device(small_graph, tiny_config):
    return SearSSDDevice(small_graph, tiny_config)


class TestSiNCompute:
    def test_distance_matches_host_kernel(self, device, small_graph):
        query = small_graph.vectors[3]
        vertex = 25
        acc = device.accelerator_of(device.luncsr.lun_of(vertex))
        address = device.allocator.generate_address(vertex)
        cmd = SearchPage(address=address, distance=DistanceType.EUCLIDEAN)
        result = acc.execute_search_page(cmd, 0, vertex, query)
        expected = float(
            distances_to_query(
                small_graph.vectors[vertex][None, :], query,
                DistanceMetric.EUCLIDEAN,
            )[0]
        )
        assert result.distance == pytest.approx(expected, rel=1e-6)

    def test_all_vertices_readable_through_sin(self, device, small_graph):
        """Every stored vector decodes bit-exactly from NAND."""
        for vertex in range(0, small_graph.num_vertices, 23):
            acc = device.accelerator_of(device.luncsr.lun_of(vertex))
            address = device.allocator.generate_address(vertex)
            raw = acc._read_vector(address)
            assert np.array_equal(raw, small_graph.vectors[vertex])

    def test_angular_distance_code(self, device, small_graph):
        query = small_graph.vectors[1]
        vertex = 8
        acc = device.accelerator_of(device.luncsr.lun_of(vertex))
        cmd = SearchPage(
            address=device.allocator.generate_address(vertex),
            distance=DistanceType.ANGULAR,
        )
        result = acc.execute_search_page(cmd, 0, vertex, query)
        expected = float(
            distances_to_query(
                small_graph.vectors[vertex][None, :], query,
                DistanceMetric.ANGULAR,
            )[0]
        )
        assert result.distance == pytest.approx(expected, rel=1e-5)

    def test_page_buffer_hits_counted(self, device, small_graph):
        vertex = 12
        acc = device.accelerator_of(device.luncsr.lun_of(vertex))
        cmd = SearchPage(address=device.allocator.generate_address(vertex))
        acc.execute_search_page(cmd, 0, vertex, small_graph.vectors[0])
        before = acc.counters["page_reads"]
        acc.execute_search_page(cmd, 1, vertex, small_graph.vectors[1])
        assert acc.counters["page_reads"] == before  # buffered
        assert acc.counters["page_buffer_hits"] >= 1

    def test_mac_ops_scale_with_dim(self, device, small_graph):
        vertex = 5
        acc = device.accelerator_of(device.luncsr.lun_of(vertex))
        cmd = SearchPage(address=device.allocator.generate_address(vertex))
        acc.execute_search_page(cmd, 0, vertex, small_graph.vectors[0])
        assert acc.counters["mac_ops"] == small_graph.dim

    def test_output_buffer_drain(self, device, small_graph):
        vertex = 5
        acc = device.accelerator_of(device.luncsr.lun_of(vertex))
        cmd = SearchPage(address=device.allocator.generate_address(vertex))
        acc.execute_search_page(cmd, 0, vertex, small_graph.vectors[0])
        out = acc.drain_output()
        assert len(out) == 1
        assert acc.output_buffer == []

    def test_multi_plane_execution(self, device, small_graph, tiny_config):
        """Find two vertices on sibling planes of one LUN at the same
        page and execute them as one multi-plane group."""
        placement = device.placement
        vpp = placement.vectors_per_page
        a, b = 0, vpp  # multiplane scheme: consecutive pages pair planes
        assert placement.lun[a] == placement.lun[b]
        assert placement.plane[a] != placement.plane[b]
        acc = device.accelerator_of(int(placement.lun[a]))
        cmds = [
            SearchPage(address=device.allocator.generate_address(a)),
            SearchPage(address=device.allocator.generate_address(b)),
        ]
        query = small_graph.vectors[2]
        work = [(0, a, query), (0, b, query)]
        results = acc.execute_multi_plane(cmds, work)
        assert len(results) == 2
        assert acc.counters["multiplane_ops"] == 1


class TestSiNEngineStructure:
    def test_one_accelerator_per_lun(self, device, tiny_config):
        total = sum(len(e.accelerators) for e in device.sin_engines)
        assert total == tiny_config.geometry.total_luns

    def test_engine_lookup(self, device):
        engine = device.sin_engines[0]
        lun = engine.accelerators[0].lun.lun_index
        assert engine.accelerator_for(lun) is engine.accelerators[0]
        with pytest.raises(KeyError):
            engine.accelerator_for(9999)
