"""Tests for TraceSet persistence and slicing."""

import numpy as np
import pytest

from repro.ann.trace import IterationRecord, SearchTrace
from repro.workloads import TraceSet


def _trace_set(n=6, seed=0):
    rng = np.random.default_rng(seed)
    traces = []
    for q in range(n):
        t = SearchTrace(query_id=q)
        for _ in range(int(rng.integers(1, 5))):
            computed = tuple(int(v) for v in rng.integers(0, 100, size=3))
            t.iterations.append(
                IterationRecord(entry=int(rng.integers(100)), computed=computed)
            )
        traces.append(t)
    ids = rng.integers(0, 100, size=(n, 4)).astype(np.int64)
    dists = rng.random(size=(n, 4))
    for t, i, d in zip(traces, ids, dists):
        t.result_ids = i
        t.result_distances = d
    return TraceSet(traces=traces, result_ids=ids, result_dists=dists)


class TestRoundTrip:
    def test_save_load_identical(self, tmp_path):
        ts = _trace_set()
        path = tmp_path / "traces.npz"
        ts.save(path)
        loaded = TraceSet.load(path)
        assert len(loaded) == len(ts)
        for a, b in zip(ts.traces, loaded.traces):
            assert a.num_iterations == b.num_iterations
            for ia, ib in zip(a.iterations, b.iterations):
                assert ia == ib
        assert np.array_equal(loaded.result_ids, ts.result_ids)
        assert np.allclose(loaded.result_dists, ts.result_dists)

    def test_empty_iterations_preserved(self, tmp_path):
        t = SearchTrace(query_id=0)
        t.iterations.append(IterationRecord(entry=3, computed=()))
        ts = TraceSet(
            traces=[t],
            result_ids=np.zeros((1, 2), dtype=np.int64),
            result_dists=np.zeros((1, 2)),
        )
        path = tmp_path / "t.npz"
        ts.save(path)
        loaded = TraceSet.load(path)
        assert loaded.traces[0].iterations[0].computed == ()


class TestSubset:
    def test_prefix_slice(self):
        ts = _trace_set(8)
        sub = ts.subset(3)
        assert len(sub) == 3
        assert sub.traces[0] is ts.traces[0]
        assert sub.result_ids.shape[0] == 3

    def test_oversized_subset_rejected(self):
        with pytest.raises(ValueError):
            _trace_set(4).subset(10)


class TestStats:
    def test_mean_statistics(self):
        ts = _trace_set()
        assert ts.mean_trace_length() > 0
        assert ts.mean_iterations() >= 1.0


class TestZipfianSampler:
    def test_weights_normalised_and_descending(self):
        from repro.workloads import zipf_weights

        w = zipf_weights(100, exponent=1.0)
        assert w.sum() == pytest.approx(1.0)
        assert (np.diff(w) <= 0).all()

    def test_zero_exponent_is_uniform(self):
        from repro.workloads import zipf_weights

        w = zipf_weights(10, exponent=0.0)
        np.testing.assert_allclose(w, 0.1)

    def test_deterministic_given_seed(self):
        from repro.workloads import ZipfianSampler

        a = ZipfianSampler(pool_size=50, exponent=1.0, seed=3).sample(200)
        b = ZipfianSampler(pool_size=50, exponent=1.0, seed=3).sample(200)
        np.testing.assert_array_equal(a, b)
        assert a.min() >= 0 and a.max() < 50

    def test_higher_exponent_concentrates_traffic(self):
        from repro.workloads import ZipfianSampler

        def top1_share(exponent):
            ids = ZipfianSampler(
                pool_size=64, exponent=exponent, seed=7
            ).sample(5000)
            _, counts = np.unique(ids, return_counts=True)
            return counts.max() / ids.size

        assert top1_share(1.5) > top1_share(0.5)

    def test_shuffle_decouples_rank_from_index(self):
        from repro.workloads import ZipfianSampler

        ids = ZipfianSampler(pool_size=1000, exponent=2.0, seed=1).sample(2000)
        _, counts = np.unique(ids, return_counts=True)
        hottest = np.bincount(ids, minlength=1000).argmax()
        assert counts.max() > 100  # skew is real
        assert hottest != 0       # but the hottest query is not index 0

    def test_expected_hit_rate_monotone(self):
        from repro.workloads import ZipfianSampler

        s = ZipfianSampler(pool_size=100, exponent=1.0, seed=0)
        rates = [s.expected_hit_rate(n) for n in (0, 1, 10, 100, 200)]
        assert rates[0] == 0.0
        assert all(a <= b for a, b in zip(rates, rates[1:]))
        assert rates[3] == pytest.approx(1.0)
        assert rates[4] == pytest.approx(1.0)

    def test_invalid_parameters_rejected(self):
        from repro.workloads import ZipfianSampler, zipf_weights

        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(10, exponent=-0.1)
        with pytest.raises(ValueError):
            ZipfianSampler(pool_size=10).sample(-1)
