"""Tests for vertex-to-flash mapping (paper Fig. 11)."""

import numpy as np
import pytest

from repro.core.placement import map_vertices
from repro.flash.commands import validate_multi_plane_group


class TestMappingBasics:
    def test_every_vertex_placed_validly(self, tiny_geometry):
        placement = map_vertices(500, tiny_geometry, vector_bytes=64)
        for v in range(0, 500, 37):
            tiny_geometry.validate(placement.address_of(v, 64))

    def test_vectors_per_page(self, tiny_geometry):
        placement = map_vertices(100, tiny_geometry, vector_bytes=100)
        assert placement.vectors_per_page == tiny_geometry.page_size // 100

    def test_no_two_vertices_share_slot(self, tiny_geometry):
        placement = map_vertices(400, tiny_geometry, vector_bytes=64)
        seen = set()
        for v in range(400):
            key = placement.page_key(v) + (int(placement.slot[v]),)
            assert key not in seen
            seen.add(key)

    def test_capacity_overflow_rejected(self, tiny_geometry):
        capacity = tiny_geometry.total_planes * tiny_geometry.pages_per_plane
        too_many = (capacity + 1) * (tiny_geometry.page_size // 64)
        with pytest.raises(ValueError):
            map_vertices(too_many, tiny_geometry, vector_bytes=64)

    def test_oversized_vector_rejected(self, tiny_geometry):
        with pytest.raises(ValueError):
            map_vertices(4, tiny_geometry, vector_bytes=tiny_geometry.page_size + 1)

    def test_unknown_scheme_rejected(self, tiny_geometry):
        with pytest.raises(ValueError):
            map_vertices(4, tiny_geometry, 64, scheme="zigzag")


class TestMultiplaneScheme:
    def test_adjacent_pages_pair_across_planes(self, tiny_geometry):
        """Fig. 11: consecutive page fills alternate planes within a
        LUN at the same page number, satisfying the ONFI rules."""
        vpp = tiny_geometry.page_size // 64
        placement = map_vertices(vpp * 4, tiny_geometry, 64, scheme="multiplane")
        # Vertices in page-fill slots 0 and 1: same LUN, same page,
        # different plane -> a legal multi-plane group.
        a = placement.address_of(0, 64)
        b = placement.address_of(vpp, 64)
        validate_multi_plane_group([a, b])

    def test_lun_advances_after_planes(self, tiny_geometry):
        vpp = tiny_geometry.page_size // 64
        n_planes = tiny_geometry.planes_per_lun
        placement = map_vertices(
            vpp * n_planes * 2, tiny_geometry, 64, scheme="multiplane"
        )
        assert placement.lun[0] == 0
        assert placement.lun[vpp * n_planes] == 1

    def test_spreads_across_all_luns(self, tiny_geometry):
        vpp = tiny_geometry.page_size // 64
        n = vpp * tiny_geometry.total_planes * 2
        placement = map_vertices(n, tiny_geometry, 64, scheme="multiplane")
        occupancy = placement.occupancy_by_lun()
        assert np.all(occupancy > 0)
        assert occupancy.max() - occupancy.min() <= vpp * tiny_geometry.planes_per_lun


class TestInterleavedScheme:
    def test_consecutive_pages_stripe_luns(self, tiny_geometry):
        vpp = tiny_geometry.page_size // 64
        placement = map_vertices(vpp * 4, tiny_geometry, 64, scheme="interleaved")
        assert placement.lun[0] == 0
        assert placement.lun[vpp] == 1

    def test_sibling_planes_hold_distant_ranges(self, tiny_geometry):
        """Under interleaving, plane 0 and plane 1 of a LUN at the same
        page number hold vertex ranges a full LUN-sweep apart — so
        multi-plane alignment between neighboring vertices is rare."""
        vpp = tiny_geometry.page_size // 64
        n_luns = tiny_geometry.total_luns
        n = vpp * n_luns * 2
        placement = map_vertices(n, tiny_geometry, 64, scheme="interleaved")
        assert placement.plane[0] == 0
        assert placement.plane[vpp * n_luns] == 1
        assert placement.page[0] == placement.page[vpp * n_luns]

    def test_both_schemes_place_all(self, tiny_geometry):
        for scheme in ("multiplane", "interleaved"):
            placement = map_vertices(300, tiny_geometry, 64, scheme=scheme)
            assert placement.num_vertices == 300


class TestPageKeys:
    def test_page_keys_vectorized_consistent(self, tiny_geometry):
        placement = map_vertices(200, tiny_geometry, 64)
        vertices = np.arange(200, dtype=np.int64)
        keys = placement.page_keys(vertices)
        for v in range(0, 200, 13):
            manual = placement.page_key(v)
            same = [
                u for u in range(200) if placement.page_key(u) == manual
            ]
            assert all(keys[u] == keys[v] for u in same)

    def test_distinct_pages_distinct_keys(self, tiny_geometry):
        placement = map_vertices(300, tiny_geometry, 64)
        vertices = np.arange(300, dtype=np.int64)
        keys = placement.page_keys(vertices)
        n_pages = len({placement.page_key(v) for v in range(300)})
        assert len(np.unique(keys)) == n_pages
