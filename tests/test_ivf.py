"""Tests for the IVF-Flat extension (Section VIII-B generalisation)."""

import numpy as np
import pytest

from repro.ann import BruteForceIndex, recall_at_k
from repro.ann.ivf import IVFFlatIndex, IVFParams, kmeans
from repro.ann.trace import TraceRecorder


class TestKMeans:
    def test_shapes(self, small_vectors):
        centroids, assignment = kmeans(small_vectors, 8, seed=1)
        assert centroids.shape == (8, small_vectors.shape[1])
        assert assignment.shape == (small_vectors.shape[0],)
        assert set(np.unique(assignment)) <= set(range(8))

    def test_deterministic(self, small_vectors):
        a, _ = kmeans(small_vectors, 6, seed=2)
        b, _ = kmeans(small_vectors, 6, seed=2)
        assert np.array_equal(a, b)

    def test_improves_over_random_assignment(self, small_vectors):
        centroids, assignment = kmeans(small_vectors, 8, seed=3)
        cost = np.sum(
            ((small_vectors - centroids[assignment]) ** 2).sum(axis=1)
        )
        rng = np.random.default_rng(0)
        random_assign = rng.integers(0, 8, size=small_vectors.shape[0])
        random_cost = np.sum(
            ((small_vectors - centroids[random_assign]) ** 2).sum(axis=1)
        )
        assert cost < random_cost

    def test_validation(self, small_vectors):
        with pytest.raises(ValueError):
            kmeans(small_vectors, 0)
        with pytest.raises(ValueError):
            kmeans(small_vectors[:3], 10)

    def test_simultaneous_empty_clusters_reseed_distinctly(self):
        """Several clusters emptying in one iteration must not collapse.

        Ten copies of the origin plus four distinct outliers: with
        seed 0 all five initial centroids are drawn from the duplicate
        block, so four clusters go empty in the *same* Lloyd
        iteration.  Re-seeding used to give them all the same farthest
        point (identical centroids forever after); each must instead
        take a distinct farthest point.
        """
        vectors = np.vstack([
            np.zeros((10, 2), dtype=np.float32),
            np.array(
                [[10, 0], [20, 0], [30, 0], [40, 0]], dtype=np.float32
            ),
        ])
        centroids, assignment = kmeans(vectors, 5, seed=0)
        assert np.unique(centroids, axis=0).shape[0] == 5
        # Every outlier location won its own centroid: the re-seed
        # walked successive farthest points instead of re-using one.
        for point in ((10, 0), (20, 0), (30, 0), (40, 0)):
            assert (np.abs(centroids - np.asarray(point)).sum(axis=1) < 1e-5).any()
        # No cluster is left empty under the returned assignment.
        assert set(np.unique(assignment)) == set(range(5))


@pytest.fixture(scope="module")
def ivf(request):
    vectors = request.getfixturevalue("small_vectors")
    return IVFFlatIndex(vectors, IVFParams(n_lists=16, nprobe=4))


class TestIVFConstruction:
    def test_lists_partition_corpus(self, ivf, small_vectors):
        total = np.concatenate(ivf.lists)
        assert sorted(total.tolist()) == list(range(small_vectors.shape[0]))

    def test_params_validation(self):
        with pytest.raises(ValueError):
            IVFParams(n_lists=0)
        with pytest.raises(ValueError):
            IVFParams(n_lists=8, nprobe=9)

    def test_base_graph_chains_lists(self, ivf):
        graph = ivf.base_graph()
        # Consecutive list members are linked, so edges = sum of
        # (list_size - 1) per non-empty list, doubled (undirected).
        expected = 2 * int(np.sum(np.maximum(ivf.list_sizes - 1, 0)))
        assert graph.num_edges == expected


class TestIVFSearch:
    def test_recall_grows_with_nprobe(self, ivf, small_vectors, small_queries):
        gt, _ = BruteForceIndex(small_vectors).search_batch(small_queries, 5)
        low = []
        high = []
        for q in small_queries:
            ids_l, _ = ivf.search(q, 5, nprobe=1)
            ids_h, _ = ivf.search(q, 5, nprobe=12)
            low.append(np.pad(ids_l, (0, 5 - ids_l.size), constant_values=-1))
            high.append(np.pad(ids_h, (0, 5 - ids_h.size), constant_values=-1))
        assert recall_at_k(np.stack(high), gt) >= recall_at_k(np.stack(low), gt)
        assert recall_at_k(np.stack(high), gt) >= 0.9

    def test_full_probe_is_exact(self, ivf, small_vectors, small_queries):
        gt, _ = BruteForceIndex(small_vectors).search_batch(small_queries, 5)
        ids = []
        for q in small_queries:
            i, _ = ivf.search(q, 5, nprobe=len(ivf.lists))
            ids.append(i)
        assert recall_at_k(np.stack(ids), gt) == 1.0

    def test_trace_records_probed_lists(self, ivf, small_queries):
        rec = TraceRecorder(0)
        ivf.search(small_queries[0], 5, nprobe=3, recorder=rec)
        trace = rec.finish()
        assert trace.num_iterations == 3
        # Each iteration's computed set is one full posting list.
        for it in trace.iterations:
            assert len(it.computed) == ivf.lists[it.entry].size

    def test_search_batch_interface(self, ivf, small_queries):
        ids, dists, traces = ivf.search_batch(small_queries, 5)
        assert ids.shape == (len(small_queries), 5)
        assert len(traces) == len(small_queries)

    def test_invalid_k(self, ivf, small_queries):
        with pytest.raises(ValueError):
            ivf.search(small_queries[0], 0)


class TestIVFOnNDSearch:
    def test_runs_on_the_same_substrate(self, small_vectors, tiny_config):
        """The Section VIII-B claim: the NDP machinery runs IVF traces
        unchanged, and sequential list scans love the page buffers."""
        from repro.core import NDSearch

        ivf = IVFFlatIndex(small_vectors, IVFParams(n_lists=16, nprobe=4))
        system = NDSearch(index=ivf, config=tiny_config)
        queries = small_vectors[:8] + 0.01
        ids, dists, sim = system.search_batch(queries, k=5)
        assert sim.sim_time_s > 0
        assert sim.counters["page_reads"] > 0
        assert (ids[:, 0] >= 0).all()
