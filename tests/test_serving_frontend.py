"""End-to-end frontend runs: invariants, admission, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import NDSearchConfig
from repro.serving import (
    BatchPolicy,
    PoissonArrivals,
    QueryStream,
    ServingConfig,
    ServingFrontend,
    build_router,
)
from repro.serving.request import COMPLETED, SHED, Request
from repro.serving.sharding import PARTITIONED


@pytest.fixture(scope="module")
def config():
    return NDSearchConfig.scaled()


@pytest.fixture(scope="module")
def pool(small_vectors):
    return np.ascontiguousarray(small_vectors[:24] + 0.02)


def make_stream(pool, n=120, rate=400.0, seed=9, zipf=0.0):
    return QueryStream(
        PoissonArrivals(rate),
        pool_size=pool.shape[0],
        n_requests=n,
        k=5,
        zipf_exponent=zipf,
        seed=seed,
    ).generate()


class TestEndToEnd:
    def test_report_invariants(self, small_vectors, pool, config):
        router = build_router(small_vectors, num_shards=2, config=config)
        frontend = ServingFrontend(
            router,
            ServingConfig(policy=BatchPolicy(max_batch_size=8, max_wait_s=2e-3)),
        )
        requests = make_stream(pool)
        report = frontend.run(requests, pool)

        assert report.offered == len(requests)
        assert report.served + report.shed == report.offered
        assert report.shed == 0
        assert report.qps > 0
        assert (
            report.latency_p50_s
            <= report.latency_p95_s
            <= report.latency_p99_s
        )
        assert 0.0 < report.mean_batch_size <= 8.0
        assert len(report.shard_utilization) == 2
        assert report.energy_j > 0
        for request in requests:
            if request.outcome == COMPLETED:
                assert request.completion_s >= request.arrival_s
                assert request.start_s >= request.batched_s >= request.arrival_s
                assert request.result_ids is not None
                assert request.result_ids.shape == (5,)

    def test_deterministic_runs(self, small_vectors, pool, config):
        def run():
            router = build_router(small_vectors, num_shards=2, config=config)
            frontend = ServingFrontend(
                router,
                ServingConfig(policy=BatchPolicy(max_batch_size=8, max_wait_s=2e-3)),
            )
            return frontend.run(make_stream(pool), pool)

        a, b = run(), run()
        assert a.qps == b.qps
        assert a.latency_p99_s == b.latency_p99_s
        assert a.cache_hits == b.cache_hits
        assert a.shard_utilization == b.shard_utilization

    def test_partitioned_mode_end_to_end(self, small_vectors, pool, config):
        router = build_router(
            small_vectors, num_shards=2, config=config, mode=PARTITIONED, seed=4
        )
        frontend = ServingFrontend(
            router,
            ServingConfig(policy=BatchPolicy(max_batch_size=8, max_wait_s=2e-3)),
        )
        report = frontend.run(make_stream(pool, n=60), pool)
        assert report.served == 60
        # Broadcast: both shards serve every batch.
        assert frontend.metrics.shard_batches[0] == frontend.metrics.shard_batches[1]
        assert all(u > 0 for u in report.shard_utilization)

    def test_partitioned_selective_full_probe_matches_broadcast(
        self, small_vectors, pool, config
    ):
        """nprobe = num_shards reproduces the broadcast run exactly."""
        router = build_router(
            small_vectors, num_shards=2, config=config, mode=PARTITIONED, seed=4
        )

        def run(nprobe):
            requests = make_stream(pool, n=60)
            frontend = ServingFrontend(
                router,
                ServingConfig(
                    policy=BatchPolicy(max_batch_size=8, max_wait_s=2e-3),
                    nprobe=nprobe,
                ),
            )
            return frontend.run(requests, pool), requests

        bcast_report, bcast_requests = run(None)
        probe_report, probe_requests = run(2)
        assert probe_report.qps == bcast_report.qps
        assert probe_report.latency_p99_s == bcast_report.latency_p99_s
        assert probe_report.energy_j == bcast_report.energy_j
        assert probe_report.shard_utilization == bcast_report.shard_utilization
        assert probe_report.mean_probes_per_query == 2.0
        for a, b in zip(bcast_requests, probe_requests):
            assert a.outcome == b.outcome
            assert a.completion_s == b.completion_s
            if a.result_ids is not None:
                np.testing.assert_array_equal(a.result_ids, b.result_ids)
                np.testing.assert_array_equal(a.result_dists, b.result_dists)

    def test_selective_probing_leaves_unprobed_shards_idle(
        self, small_vectors, config
    ):
        """nprobe=1 books device time only on the shards queries probed."""
        router = build_router(
            small_vectors, num_shards=4, config=config, mode=PARTITIONED, seed=4
        )
        # A tight pool drawn from one shard's sub-corpus: with nprobe=1
        # every query routes to a strict subset of the pool.
        members = router.global_ids[0][:12]
        tight_pool = np.ascontiguousarray(small_vectors[members] + 0.01)
        assignment = router.probe(tight_pool, 1)
        probed = set(int(s) for s in np.unique(assignment))
        assert len(probed) < router.num_shards  # precondition: some idle
        frontend = ServingFrontend(
            router,
            ServingConfig(
                policy=BatchPolicy(max_batch_size=8, max_wait_s=2e-3),
                cache_capacity=0,
                coalesce=False,
                nprobe=1,
            ),
        )
        report = frontend.run(make_stream(tight_pool, n=60), tight_pool)
        assert report.completed == 60
        assert report.mean_probes_per_query == 1.0
        for shard in range(router.num_shards):
            if shard not in probed:
                assert frontend.devices[shard].busy_s == 0.0
                assert frontend.devices[shard].batches_served == 0
                assert frontend.metrics.shard_batches[shard] == 0
                assert report.shard_probe_counts[shard] == 0
                assert report.shard_utilization[shard] == 0.0

    def test_selective_probing_returns_valid_global_ids(
        self, small_vectors, pool, config
    ):
        router = build_router(
            small_vectors, num_shards=4, config=config, mode=PARTITIONED, seed=4
        )
        frontend = ServingFrontend(
            router,
            ServingConfig(
                policy=BatchPolicy(max_batch_size=8, max_wait_s=2e-3),
                cache_capacity=0,
                coalesce=False,
                nprobe=2,
            ),
        )
        requests = make_stream(pool, n=60)
        report = frontend.run(requests, pool)
        assert report.completed == 60
        for request in requests:
            assert request.result_ids is not None
            valid = request.result_ids >= 0
            assert valid.any()
            assert request.result_ids[valid].max() < small_vectors.shape[0]
            # A query's completion joins only its own probed shards, so
            # it is still a real fan-out join time.
            assert request.completion_s >= request.batched_s

    def test_nprobe_validation(self, small_vectors, pool, config):
        replicated = build_router(small_vectors, num_shards=2, config=config)
        with pytest.raises(ValueError):
            ServingFrontend(replicated, ServingConfig(nprobe=1))
        partitioned = build_router(
            small_vectors, num_shards=2, config=config, mode=PARTITIONED, seed=4
        )
        with pytest.raises(ValueError):
            ServingFrontend(partitioned, ServingConfig(nprobe=3))
        with pytest.raises(ValueError):
            ServingFrontend(partitioned, ServingConfig(nprobe=0))
        # A partitioned router assembled without routing centroids must
        # fail at construction, not mid-run on the first dispatch.
        from repro.serving import ShardRouter

        centroidless = ShardRouter(
            backends=list(partitioned.backends),
            mode=PARTITIONED,
            global_ids=partitioned.global_ids,
        )
        with pytest.raises(ValueError):
            ServingFrontend(centroidless, ServingConfig(nprobe=1))

    def test_greedy_policy_batch_of_one(self, small_vectors, pool, config):
        router = build_router(small_vectors, num_shards=1, config=config)
        frontend = ServingFrontend(
            router, ServingConfig(policy=BatchPolicy(mode="greedy"), cache_capacity=0)
        )
        report = frontend.run(make_stream(pool, n=40), pool)
        assert report.mean_batch_size == 1.0
        assert report.completed == 40
        assert report.cache_hits == 0


class TestAdmission:
    def test_overload_sheds_and_books_balance(self, small_vectors, pool, config):
        router = build_router(small_vectors, num_shards=1, config=config)
        # Fixed batches of 64 never fill from 80 requests, so the queue
        # grows until admission (capacity 10) starts shedding.
        frontend = ServingFrontend(
            router,
            ServingConfig(
                policy=BatchPolicy(max_batch_size=64, max_wait_s=0.0, mode="fixed"),
                cache_capacity=0,
                admission_capacity=10,
            ),
        )
        requests = make_stream(pool, n=80, rate=10000.0)
        report = frontend.run(requests, pool)
        assert report.shed > 0
        assert report.served + report.shed == 80
        assert report.shed_rate == pytest.approx(report.shed / 80)
        shed_requests = [r for r in requests if r.outcome == SHED]
        assert len(shed_requests) == report.shed
        assert all(r.completion_s is None for r in shed_requests)

    def test_unbounded_never_sheds(self, small_vectors, pool, config):
        router = build_router(small_vectors, num_shards=1, config=config)
        frontend = ServingFrontend(
            router,
            ServingConfig(policy=BatchPolicy(max_batch_size=4, max_wait_s=1e-3)),
        )
        report = frontend.run(make_stream(pool, n=60, rate=50000.0), pool)
        assert report.shed == 0
        assert report.served == 60


@pytest.mark.slow
class TestSoak:
    """Long-stream soak (excluded from the default tier-1 run)."""

    def test_long_bursty_stream_stays_consistent(self, small_vectors, pool, config):
        from repro.serving import MMPPArrivals

        router = build_router(small_vectors, num_shards=2, config=config)
        frontend = ServingFrontend(
            router,
            ServingConfig(
                policy=BatchPolicy(max_batch_size=16, max_wait_s=2e-3),
                cache_capacity=64,
                admission_capacity=512,
            ),
        )
        stream = QueryStream(
            MMPPArrivals(5000.0),
            pool_size=pool.shape[0],
            n_requests=3000,
            k=5,
            zipf_exponent=1.0,
            seed=23,
        ).generate()
        report = frontend.run(stream, pool)
        assert report.served + report.shed == 3000
        assert report.cache_hits > 0
        assert report.latency_p50_s <= report.latency_p99_s
        assert report.qps > 0


class TestMixedK:
    def test_mixed_k_requests_in_one_batch(self, small_vectors, pool, config):
        """Each request gets exactly its own k results and cache key."""
        router = build_router(small_vectors, num_shards=1, config=config)
        frontend = ServingFrontend(
            router,
            ServingConfig(policy=BatchPolicy(max_batch_size=4, max_wait_s=1e-3)),
        )
        requests = make_stream(pool, n=12)
        for i, request in enumerate(requests):
            request.k = 3 if i % 2 else 7
        frontend.run(requests, pool)
        for i, request in enumerate(requests):
            want = 3 if i % 2 else 7
            if request.outcome == COMPLETED:
                assert request.result_ids.shape == (want,)
                assert frontend.cache.lookup(request.query_id, want) is not None
            elif request.outcome == "cache_hit":
                assert request.result_ids.shape == (want,)

    def test_dispatched_results_are_copies_not_batch_views(
        self, small_vectors, pool, config
    ):
        """Regression: result rows must own their data.  Views into the
        batch's (n, k) arrays pinned the whole batch in memory and let
        a client mutating one request's results write through into the
        shared buffer other requests and the coalescer read from."""
        router = build_router(small_vectors, num_shards=1, config=config)
        frontend = ServingFrontend(
            router,
            ServingConfig(policy=BatchPolicy(max_batch_size=4, max_wait_s=1e-3)),
        )
        requests = make_stream(pool, n=8, rate=100000.0)
        frontend.run(requests, pool)
        completed = [r for r in requests if r.outcome == COMPLETED]
        assert len(completed) >= 2
        # Each result owns its buffer (no view keeping the batch alive).
        for request in completed:
            assert request.result_ids.base is None
            assert request.result_dists.base is None
        victim, sibling = completed[0], completed[1]
        cached_before = frontend.cache.lookup(victim.query_id, victim.k)
        sibling_before = sibling.result_ids.copy()
        victim.result_ids[:] = -123
        victim.result_dists[:] = -1.0
        # Neither the cache nor a sibling request from the same batch
        # sees the mutation.
        cached_after = frontend.cache.lookup(victim.query_id, victim.k)
        np.testing.assert_array_equal(cached_before[0], cached_after[0])
        assert (cached_after[0] != -123).all()
        np.testing.assert_array_equal(sibling.result_ids, sibling_before)

    def test_mutating_results_cannot_corrupt_coalesced_followers(
        self, small_vectors, pool, config
    ):
        """A follower resolving against an in-flight entry must not see
        a client's in-place mutation of the leader's results."""
        router = build_router(small_vectors, num_shards=1, config=config)
        frontend = ServingFrontend(
            router,
            ServingConfig(
                policy=BatchPolicy(max_batch_size=1),
                cache_capacity=0,
                coalesce=True,
            ),
        )
        leader = Request(0, 3, 0.0, k=5)
        requests = [leader, Request(1, 3, 1e-7, k=5)]
        # Run manually: dispatch happens while processing the leader,
        # so mutate its results "from the client side" in between by
        # replaying the run and mutating afterwards — the follower
        # already resolved from the coalescer's private copy.
        frontend.run(requests, pool)
        follower = requests[1]
        assert follower.outcome == "coalesced"
        follower_before = follower.result_ids.copy()
        leader.result_ids[:] = -99
        np.testing.assert_array_equal(follower.result_ids, follower_before)
        assert (follower.result_ids != -99).all()

    def test_cache_hit_result_is_isolated(self, small_vectors, pool, config):
        """Mutating a returned result must not corrupt the cache."""
        router = build_router(small_vectors, num_shards=1, config=config)
        frontend = ServingFrontend(
            router, ServingConfig(policy=BatchPolicy(max_batch_size=1))
        )
        requests = make_stream(pool, n=2, zipf=0.0)
        requests[1].query_id = requests[0].query_id  # force a repeat
        frontend.run(requests, pool)
        assert requests[1].outcome == "cache_hit"
        requests[1].result_ids[:] = -99
        fresh = frontend.cache.lookup(requests[0].query_id, 5)
        assert fresh is not None and (fresh[0] != -99).all()

class TestReportSerialization:
    """ServingReport.to_dict / from_dict round-trip (the JSON surface
    the CLI's --report-json and the bench sweep artifacts persist)."""

    def _report(self, small_vectors, pool, config, **extra):
        router = build_router(small_vectors, num_shards=2, config=config)
        frontend = ServingFrontend(
            router,
            ServingConfig(
                policy=BatchPolicy(max_batch_size=8, max_wait_s=2e-3),
                **extra,
            ),
        )
        return frontend.run(make_stream(pool), pool)

    def test_to_dict_is_json_safe(self, small_vectors, pool, config):
        import json

        report = self._report(
            small_vectors, pool, config, metrics_window_s=1e-3
        )
        payload = report.to_dict()
        text = json.dumps(payload, sort_keys=True)
        assert json.loads(text) == json.loads(text)
        # Derived conveniences ride along for consumers.
        assert payload["served"] == report.served
        assert payload["counters"]["loop_events_total"] > 0
        assert payload["timeseries"]["windows"]

    def test_round_trip_restores_the_report(
        self, small_vectors, pool, config
    ):
        import json

        from repro.serving.metrics import ServingReport

        report = self._report(
            small_vectors, pool, config, metrics_window_s=1e-3
        )
        wire = json.loads(json.dumps(report.to_dict()))
        restored = ServingReport.from_dict(wire)
        assert restored == report
        assert restored.to_dict() == report.to_dict()
        # Restored reports still compute and format.
        assert restored.served == report.served
        assert restored.format()
