"""Task functions the worker-pool tests fan out.

Pool workers import tasks by name (``"pool_tasks:echo"``), so these
live in a plain module the tests hand to the pool via its ``path``
option — not inside a test file pytest may import under a different
module name.
"""

from __future__ import annotations

import hashlib
import os


def echo(value):
    return value


def worker_pid() -> int:
    return os.getpid()


def crash_once(marker: str, value):
    """Die hard (no response, no cleanup) the first time, succeed on
    the retry — the filesystem marker survives the crash, the process
    does not."""
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(17)
    return value


def always_crash():
    """Die hard on every call — the row can never succeed."""
    os._exit(3)


def boom(message: str):
    raise RuntimeError(message)


def serving_digest(policy: str, rate: float) -> dict:
    """A miniature serving cell reduced to a parity-style digest.

    A pure function of its spec (pinned seeds end to end), so pooled
    and serial sweeps over the same rows must produce byte-identical
    results — the determinism contract the pool tests hold it to.
    """
    from repro.core.config import NDSearchConfig
    from repro.data.synthetic import clustered_gaussian, split_queries
    from repro.serving import (
        BatchPolicy,
        PoissonArrivals,
        QueryStream,
        ServingConfig,
        ServingFrontend,
        build_router,
    )

    vectors = clustered_gaussian(200, 8, seed=7)
    pool = split_queries(vectors, 32, seed=9)
    router = build_router(
        vectors, num_shards=1, config=NDSearchConfig.scaled()
    )
    requests = QueryStream(
        PoissonArrivals(rate), pool_size=32, n_requests=80, k=5, seed=11
    ).generate()
    frontend = ServingFrontend(
        router,
        ServingConfig(
            policy=BatchPolicy(
                max_batch_size=16, max_wait_s=2e-3, mode=policy
            ),
            cache_capacity=0,
            coalesce=False,
        ),
    )
    report = frontend.run(requests, pool)
    digest = hashlib.sha256()
    for request in requests:
        digest.update(
            repr(
                (
                    request.request_id,
                    request.outcome,
                    request.batched_s,
                    request.start_s,
                    request.completion_s,
                )
            ).encode()
        )
        if request.result_ids is not None:
            digest.update(request.result_ids.tobytes())
            digest.update(request.result_dists.tobytes())
    digest.update(
        repr(
            (
                report.completed,
                report.qps,
                report.latency_p50_s,
                report.latency_p99_s,
                report.mean_batch_size,
            )
        ).encode()
    )
    return {
        "policy": policy,
        "rate": rate,
        "qps": report.qps,
        "p99_ms": report.latency_p99_s * 1e3,
        "digest": digest.hexdigest(),
    }
