"""Tests for the experiment infrastructure (workloads, caching, runs).

These run at a tiny scale (scale=0.05, 16-query pools) so the full
pipeline — dataset generation, graph construction, trace recording,
disk caching, platform dispatch — is exercised in seconds.
"""

import numpy as np
import pytest

from repro.core import NDSearchConfig, SchedulingFlags
from repro.experiments import common


@pytest.fixture(scope="module")
def tiny_workload(tmp_path_factory, request):
    cache = tmp_path_factory.mktemp("expcache")
    monkey = pytest.MonkeyPatch()
    monkey.setenv("REPRO_CACHE_DIR", str(cache))
    request.addfinalizer(monkey.undo)
    common._memory_cache.clear()
    return common.get_workload("sift-1b", "hnsw", scale=0.05, pool=16)


class TestWorkloadGeneration:
    def test_workload_contents(self, tiny_workload):
        w = tiny_workload
        assert w.graph.num_vertices == w.dataset.num_vectors
        assert len(w.trace_set) == 16
        assert w.ground_truth.shape == (16, 10)
        assert 0.0 <= w.recall <= 1.0

    def test_recall_reasonable_even_tiny(self, tiny_workload):
        assert tiny_workload.recall > 0.7

    def test_disk_cache_roundtrip(self, tiny_workload):
        common._memory_cache.clear()
        again = common.get_workload("sift-1b", "hnsw", scale=0.05, pool=16)
        assert np.array_equal(again.graph.indptr, tiny_workload.graph.indptr)
        assert np.array_equal(
            again.trace_set.result_ids, tiny_workload.trace_set.result_ids
        )
        assert again.recall == pytest.approx(tiny_workload.recall)

    def test_memory_cache_identity(self):
        a = common.get_workload("sift-1b", "hnsw", scale=0.05, pool=16)
        b = common.get_workload("sift-1b", "hnsw", scale=0.05, pool=16)
        assert a is b

    def test_profile_consistency(self, tiny_workload):
        profile = tiny_workload.profile()
        assert profile.dim == tiny_workload.dataset.dim
        assert profile.footprint_bytes > 0


class TestSearchEf:
    def test_small_datasets_narrower(self):
        assert common.search_ef("glove-100", "hnsw") < common.search_ef(
            "sift-1b", "hnsw"
        )

    def test_default_by_algorithm(self):
        assert common.search_ef("sift-1b", "diskann") == 64


class TestRunPlatform:
    @pytest.mark.parametrize(
        "platform",
        ["cpu", "cpu-t", "gpu", "smartssd", "ds-c", "ds-cp", "ndsearch"],
    )
    def test_every_platform_dispatches(self, tiny_workload, platform):
        result = common.run_platform(platform, tiny_workload, batch=8)
        assert result.sim_time_s > 0
        assert result.batch_size == 8
        assert result.platform == platform
        assert result.power_w > 0

    def test_unknown_platform(self, tiny_workload):
        with pytest.raises(ValueError):
            common.run_platform("tpu", tiny_workload, batch=8)

    def test_flags_override(self, tiny_workload):
        bare = common.run_platform(
            "ndsearch", tiny_workload, batch=8, flags=SchedulingFlags.bare()
        )
        full = common.run_platform("ndsearch", tiny_workload, batch=8)
        assert bare.counters["speculative_page_reads"] == 0
        assert full.sim_time_s <= bare.sim_time_s

    def test_ndsearch_system_cached_per_flags(self, tiny_workload):
        cfg = NDSearchConfig.scaled()
        a = tiny_workload.ndsearch(cfg)
        b = tiny_workload.ndsearch(cfg)
        c = tiny_workload.ndsearch(cfg.with_flags(SchedulingFlags.bare()))
        assert a is b
        assert a is not c

    def test_index_shim_refuses_search(self, tiny_workload):
        shim = common._IndexShim(tiny_workload)
        with pytest.raises(NotImplementedError):
            shim.search_batch(None, 5)

    def test_index_shim_hot_vertices(self, tiny_workload):
        shim = common._IndexShim(tiny_workload)
        hot = shim.hot_vertices(0.1)
        assert hot.size == max(1, int(0.1 * tiny_workload.graph.num_vertices))
