"""Span tracing: Chrome trace export, determinism, timeline alignment."""

from __future__ import annotations

import json

import pytest

from repro.core.config import NDSearchConfig
from repro.data.synthetic import clustered_gaussian, split_queries
from repro.obs import NullTracer, SpanTracer
from repro.serving import (
    BatchPolicy,
    PoissonArrivals,
    QueryStream,
    ServingConfig,
    ServingFrontend,
    ShardDevice,
    build_router,
)
from repro.serving.request import CACHE_HIT, COALESCED, COMPLETED, SHED
from repro.sim.stats import SimResult, serial_timeline

#: Phases the Chrome trace-event format defines for the events the
#: tracer emits: metadata, complete, instant, async begin/end, counter.
VALID_PHASES = {"M", "X", "i", "b", "e", "C"}


def _result(stages, batch=8):
    timeline = serial_timeline(stages)
    total = timeline[-1].end if timeline else 0.0
    return SimResult("x", "hnsw", "synthetic", batch, total, timeline=timeline)


def _serve(tracer, *, seed=11, requests=120, rate=8000.0, cache=16):
    vectors = clustered_gaussian(300, 8, seed=21)
    pool = split_queries(vectors, 48, seed=22)
    router = build_router(vectors, num_shards=2, config=NDSearchConfig.scaled())
    stream = QueryStream(
        PoissonArrivals(rate),
        pool_size=48,
        n_requests=requests,
        k=5,
        zipf_exponent=1.1,
        seed=seed,
    )
    frontend = ServingFrontend(
        router,
        ServingConfig(
            policy=BatchPolicy(max_batch_size=8, max_wait_s=1e-3),
            cache_capacity=cache,
            coalesce=True,
        ),
        tracer=tracer,
    )
    requests = stream.generate()
    report = frontend.run(requests, pool)
    return report, requests


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        # Every hook is callable and returns nothing to store.
        tracer.process(0, "p")
        assert tracer.thread(0, "t") == 0
        tracer.instant("a", "c", 1.0)
        tracer.complete("a", "c", 1.0, 2.0)
        tracer.async_begin("a", "c", 1, 1.0)
        tracer.async_end("a", "c", 1, 2.0)
        tracer.counter("a", 1.0, {"v": 1.0})
        assert not vars(tracer)  # stateless: nothing was recorded


class TestSpanTracer:
    def test_thread_ids_stable_per_process(self):
        tracer = SpanTracer()
        assert tracer.thread(1, "nand") == 0
        assert tracer.thread(1, "mac") == 1
        assert tracer.thread(2, "nand") == 0  # per-pid allocation
        assert tracer.thread(1, "nand") == 0  # stable on reuse
        names = [
            e["args"]["name"] for e in tracer.events() if e["ph"] == "M"
        ]
        assert names == ["nand", "mac", "nand"]

    def test_microsecond_timestamps(self):
        tracer = SpanTracer()
        tracer.complete("batch", "stage", 1e-3, 3e-3)
        (event,) = tracer.events()
        assert event["ts"] == pytest.approx(1e3)
        assert event["dur"] == pytest.approx(2e3)

    def test_chrome_trace_shape(self):
        tracer = SpanTracer()
        tracer.process(0, "frontend")
        tid = tracer.thread(0, "kernel")
        tracer.instant("tick", "kernel", 1e-3, tid=tid)
        tracer.complete("batch", "stage", 1e-3, 2e-3)
        tracer.async_begin("request", "request", 7, 0.0)
        tracer.async_end("request", "request", 7, 5e-3)
        tracer.counter("queue", 1e-3, {"depth": 3})
        payload = json.loads(tracer.json_str())
        assert set(payload) == {"displayTimeUnit", "traceEvents"}
        for event in payload["traceEvents"]:
            assert event["ph"] in VALID_PHASES
            assert {"name", "pid", "tid"} <= set(event)
            if event["ph"] == "X":
                assert event["dur"] >= 0
            if event["ph"] in ("b", "e"):
                assert "id" in event
            if event["ph"] in ("C", "M"):
                assert "args" in event

    def test_write_round_trips(self, tmp_path):
        tracer = SpanTracer()
        tracer.complete("batch", "stage", 0.0, 1e-3)
        path = tmp_path / "trace.json"
        tracer.write(path)
        assert json.loads(path.read_text()) == tracer.to_json()


class TestDeviceSpans:
    def test_pipelined_stage_spans_match_timeline(self):
        """Stage spans reproduce the SimResult phase timeline lanes."""
        chain = [("in", "a", 1.0), ("work", "b", 3.0), ("out", "c", 1.0)]
        result = _result(chain)
        tracer = SpanTracer()
        device = ShardDevice(pipelined=True)
        device.tracer = tracer
        device.trace_pid = 3
        device.serve(result, at=2.0)
        spans = [e for e in tracer.events() if e["ph"] == "X"]
        assert [e["name"] for e in spans] == ["a", "b", "c"]
        # An unloaded device books the chain back-to-back from t=2, so
        # each span is its timeline segment shifted by the start time.
        expected = [(2.0, 1.0), (3.0, 3.0), (6.0, 1.0)]
        for span, (start, dur) in zip(spans, expected):
            assert span["ts"] == pytest.approx(start * 1e6)
            assert span["dur"] == pytest.approx(dur * 1e6)
            assert span["pid"] == 3
        # One lane (tid) per resource, in first-emission order.
        assert [s["tid"] for s in spans] == [0, 1, 2]

    def test_blocking_device_emits_whole_batch_span(self):
        result = _result([("in", "a", 1.0), ("work", "b", 3.0)])
        tracer = SpanTracer()
        device = ShardDevice(pipelined=False)
        device.tracer = tracer
        device.serve(result, at=0.0)
        device.serve(result, at=0.0)
        spans = [e for e in tracer.events() if e["ph"] == "X"]
        assert [(s["ts"], s["dur"]) for s in spans] == [
            (0.0, pytest.approx(4e6)),
            (pytest.approx(4e6), pytest.approx(4e6)),
        ]

    def test_booked_movement_span(self):
        tracer = SpanTracer()
        device = ShardDevice(pipelined=True)
        device.tracer = tracer
        device.book(1.0, 0.5)
        (span,) = [e for e in tracer.events() if e["ph"] == "X"]
        assert span["name"] == "data movement"
        assert span["cat"] == "movement"


class TestServingTrace:
    def test_same_seed_same_config_byte_identical(self):
        """The acceptance criterion: trace export is deterministic."""
        tracer_a, tracer_b = SpanTracer(), SpanTracer()
        _serve(tracer_a, seed=11)
        _serve(tracer_b, seed=11)
        assert tracer_a.json_str() == tracer_b.json_str()
        assert len(tracer_a) > 0

    def test_different_seed_different_trace(self):
        tracer_a, tracer_b = SpanTracer(), SpanTracer()
        _serve(tracer_a, seed=11)
        _serve(tracer_b, seed=12)
        assert tracer_a.json_str() != tracer_b.json_str()

    def test_request_spans_align_with_outcomes(self):
        """Every request's async span closes at its recorded timestamps."""
        tracer = SpanTracer()
        report, requests = _serve(tracer)
        opens = {}
        closes = {}
        for event in tracer.events():
            if event.get("cat") != "request":
                continue
            if event["ph"] == "b":
                opens[event["id"]] = event
            elif event["ph"] == "e":
                closes[event["id"]] = event
        for request in requests:
            begin = opens[request.request_id]
            assert begin["ts"] == pytest.approx(request.arrival_s * 1e6)
            end = closes[request.request_id]
            assert end["args"]["outcome"] == request.outcome
            if request.outcome in (COMPLETED, CACHE_HIT, COALESCED):
                assert end["ts"] == pytest.approx(request.completion_s * 1e6)
            else:
                assert request.outcome == SHED
        # Spans balance: one begin and one end per offered request.
        assert len(opens) == len(closes) == report.offered

    def test_batch_spans_cover_member_requests(self):
        tracer = SpanTracer()
        report, requests = _serve(tracer, cache=0)
        batch_spans = {}
        for event in tracer.events():
            if event.get("cat") == "batch" and event["ph"] == "b":
                batch_spans[event["id"]] = event
        assert batch_spans
        sizes = sum(e["args"]["size"] for e in batch_spans.values())
        assert sizes == report.completed
        # A batched request's service start is inside some batch span.
        for request in requests:
            if request.outcome == COMPLETED:
                assert any(
                    e["ts"] <= request.batched_s * 1e6 + 1e-6
                    for e in batch_spans.values()
                )

    def test_process_metadata_names_frontend_and_shards(self):
        tracer = SpanTracer()
        _serve(tracer)
        names = {
            e["args"]["name"]
            for e in tracer.events()
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "serving.frontend" in names
        assert "shard 0" in names and "shard 1" in names
