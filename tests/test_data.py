"""Tests for synthetic datasets and the named registry."""

import numpy as np
import pytest

from repro.ann.distance import DistanceMetric
from repro.data import (
    clustered_gaussian,
    dataset_names,
    load_dataset,
    quantized_descriptors,
    unit_normalized,
)
from repro.data.synthetic import split_queries


class TestGenerators:
    def test_clustered_shape_and_dtype(self):
        x = clustered_gaussian(200, 16, seed=1)
        assert x.shape == (200, 16)
        assert x.dtype == np.float32

    def test_clustered_deterministic(self):
        a = clustered_gaussian(100, 8, seed=5)
        b = clustered_gaussian(100, 8, seed=5)
        assert np.array_equal(a, b)

    def test_clustering_structure_present(self):
        """Intra-cluster distances must be smaller than global spread."""
        x = clustered_gaussian(500, 16, n_clusters=8, cluster_std=0.3, seed=2)
        global_var = x.var()
        # Nearest-neighbor distances much smaller than random-pair ones.
        from repro.ann import BruteForceIndex

        bf = BruteForceIndex(x)
        _, d_nn = bf.search_batch(x[:50], 2)
        nn = d_nn[:, 1].mean()
        rng = np.random.default_rng(0)
        pairs = rng.integers(0, 500, size=(200, 2))
        rand = ((x[pairs[:, 0]] - x[pairs[:, 1]]) ** 2).sum(axis=1).mean()
        assert nn < 0.5 * rand
        assert global_var > 0

    def test_quantized_integral_and_range(self):
        x = quantized_descriptors(300, 32, seed=3)
        assert np.array_equal(x, np.round(x))
        assert x.min() >= 0
        assert x.max() <= 255

    def test_unit_normalized(self):
        x = unit_normalized(100, 24, seed=4)
        norms = np.linalg.norm(x, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-5)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            clustered_gaussian(0, 8)
        with pytest.raises(ValueError):
            clustered_gaussian(10, 8, n_clusters=0)

    def test_split_queries_not_duplicates(self):
        x = clustered_gaussian(100, 8, seed=6)
        q = split_queries(x, 20, seed=7)
        assert q.shape == (20, 8)
        # Perturbed: no query exactly equals a corpus row.
        assert not any((x == qi).all(axis=1).any() for qi in q)


class TestRegistry:
    def test_five_datasets(self):
        assert dataset_names() == [
            "glove-100", "fashion-mnist", "sift-1b", "deep-1b", "spacev-1b",
        ]

    def test_dims_match_paper_families(self):
        assert load_dataset("glove-100", scale=0.1).dim == 100
        assert load_dataset("sift-1b", scale=0.1).dim == 128
        assert load_dataset("deep-1b", scale=0.1).dim == 96
        assert load_dataset("spacev-1b", scale=0.1).dim == 100

    def test_glove_is_angular(self):
        assert load_dataset("glove-100", scale=0.1).metric is DistanceMetric.ANGULAR

    def test_memory_classes_scaled_config(self):
        """glove/fashion-mnist fit the scaled 2 MB host DRAM; the
        1b-class analogues overflow it (the paper's memory split)."""
        from repro.core.config import NDSearchConfig

        cap = NDSearchConfig.scaled().host.dram_capacity_bytes
        for name in ("glove-100", "fashion-mnist"):
            assert load_dataset(name).footprint_bytes() <= cap, name
        for name in ("sift-1b", "deep-1b", "spacev-1b"):
            assert load_dataset(name).footprint_bytes() > cap, name

    def test_recall_targets(self):
        assert load_dataset("sift-1b", scale=0.1).recall_target == 0.94
        assert load_dataset("spacev-1b", scale=0.1).recall_target == 0.90

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")

    def test_scale_shrinks_corpus(self):
        full = load_dataset("sift-1b")
        small = load_dataset("sift-1b", scale=0.1)
        assert small.num_vectors == full.num_vectors // 10

    def test_query_batch_deterministic(self):
        ds = load_dataset("glove-100", scale=0.2, n_queries=32)
        a = ds.query_batch(16)
        b = ds.query_batch(16)
        assert np.array_equal(a, b)

    def test_query_batch_extends_pool(self):
        ds = load_dataset("glove-100", scale=0.2, n_queries=8)
        q = ds.query_batch(20)
        assert q.shape[0] == 20

    def test_normalized_queries_for_angular(self):
        ds = load_dataset("glove-100", scale=0.2)
        norms = np.linalg.norm(ds.queries, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-4)
