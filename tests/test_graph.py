"""Unit tests for the ProximityGraph container."""

import numpy as np
import pytest

from repro.ann.distance import DistanceMetric
from repro.ann.graph import ProximityGraph


def _tiny_graph():
    vectors = np.arange(12, dtype=np.float32).reshape(4, 3)
    adjacency = [[1, 2], [0], [3], [2, 0]]
    return ProximityGraph.from_adjacency(vectors, adjacency, entry_point=1)


class TestConstruction:
    def test_from_adjacency_csr_layout(self):
        g = _tiny_graph()
        assert g.num_vertices == 4
        assert g.num_edges == 6
        assert np.array_equal(g.indptr, [0, 2, 3, 4, 6])
        assert np.array_equal(g.neighbors(0), [1, 2])
        assert np.array_equal(g.neighbors(3), [2, 0])

    def test_degree_accessors(self):
        g = _tiny_graph()
        assert g.degree(0) == 2
        assert g.degree(1) == 1
        assert np.array_equal(g.degrees, [2, 1, 1, 2])
        assert g.max_degree == 2
        assert g.mean_degree == pytest.approx(1.5)

    def test_indptr_validation(self):
        vectors = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            ProximityGraph(vectors, np.array([0, 1]), np.array([0]))
        with pytest.raises(ValueError):
            ProximityGraph(vectors, np.array([0, 2, 1]), np.array([1, 0]))

    def test_neighbor_range_validation(self):
        vectors = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            ProximityGraph(vectors, np.array([0, 1, 2]), np.array([0, 5]))

    def test_entry_point_validation(self):
        vectors = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            ProximityGraph(
                vectors, np.array([0, 1, 2]), np.array([1, 0]), entry_point=7
            )

    def test_adjacency_length_mismatch(self):
        with pytest.raises(ValueError):
            ProximityGraph.from_adjacency(np.zeros((3, 2), dtype=np.float32), [[1]])


class TestRelabel:
    def test_relabeled_preserves_topology(self):
        g = _tiny_graph()
        order = np.array([2, 0, 3, 1])
        r = g.relabeled(order)
        # Old vertex 2 becomes new 0; its neighbor old-3 becomes new 2.
        assert np.array_equal(r.neighbors(0), [2])
        assert np.array_equal(r.vectors[0], g.vectors[2])

    def test_relabeled_entry_point_follows(self):
        g = _tiny_graph()
        order = np.array([1, 0, 2, 3])
        r = g.relabeled(order)
        assert r.entry_point == 0  # old entry 1 is now first

    def test_relabeled_identity(self):
        g = _tiny_graph()
        r = g.relabeled(np.arange(4))
        assert np.array_equal(r.indptr, g.indptr)
        assert np.array_equal(r.indices, g.indices)

    def test_relabeled_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            _tiny_graph().relabeled(np.array([0, 0, 1, 2]))

    def test_degree_multiset_invariant(self):
        g = _tiny_graph()
        r = g.relabeled(np.array([3, 2, 1, 0]))
        assert sorted(g.degrees.tolist()) == sorted(r.degrees.tolist())


class TestUndirectedAndConnectivity:
    def test_undirected_symmetrises(self):
        g = _tiny_graph()
        u = g.undirected()
        for v in range(u.num_vertices):
            for w in u.neighbors(v):
                assert v in u.neighbors(int(w))

    def test_is_connected_true(self):
        assert _tiny_graph().is_connected()

    def test_is_connected_false(self):
        vectors = np.zeros((4, 2), dtype=np.float32)
        g = ProximityGraph.from_adjacency(vectors, [[1], [0], [3], [2]])
        assert not g.is_connected()


class TestLayoutAccounting:
    def test_padded_vs_csr_bytes(self):
        g = _tiny_graph()
        padded = g.padded_layout_bytes(max_neighbors=8)
        csr = g.csr_layout_bytes()
        # 4 vertices x (12B vector + 32B ids) vs CSR exact edges.
        assert padded == 4 * (12 + 32)
        assert csr == 4 * 12 + 6 * 4 + 5 * 8
        assert padded > csr - 5 * 8  # padding dominates sparse adjacency
