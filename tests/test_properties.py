"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ann.distance import DistanceMetric, distances_to_query
from repro.ann.graph import ProximityGraph
from repro.core.static_scheduling import bandwidth_beta, degree_ascending_bfs
from repro.core.placement import map_vertices
from repro.flash.commands import DistanceType, SearchPage
from repro.flash.ftl import FlashTranslationLayer
from repro.flash.geometry import PhysicalAddress, SSDGeometry
from repro.sorting.bitonic import bitonic_sort, bitonic_top_k

GEOMETRY = SSDGeometry(
    channels=2,
    chips_per_channel=2,
    luns_per_chip=2,
    planes_per_lun=2,
    blocks_per_plane=8,
    pages_per_block=8,
    page_size=1024,
)


# ---- bitonic network ------------------------------------------------------
@given(
    st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=0,
        max_size=130,
    )
)
@settings(max_examples=60, deadline=None)
def test_bitonic_sorts_any_input(keys):
    out, _ = bitonic_sort(np.asarray(keys, dtype=np.float64))
    assert np.array_equal(out, np.sort(np.asarray(keys, dtype=np.float64)))


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=64,
    ),
    st.integers(min_value=1, max_value=10),
)
@settings(max_examples=40, deadline=None)
def test_bitonic_top_k_matches_argsort(keys, k):
    keys = np.asarray(keys, dtype=np.float64)
    ids = np.arange(keys.size)
    top_d, top_i = bitonic_top_k(keys, ids, k)
    assert np.array_equal(np.sort(top_d), top_d)
    ref = np.sort(keys)[: min(k, keys.size)]
    assert np.allclose(top_d, ref)


# ---- distances -----------------------------------------------------------------
@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_euclidean_properties(n, dim, seed):
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n, dim)).astype(np.float32)
    query = rng.normal(size=dim).astype(np.float32)
    d = distances_to_query(vectors, query, DistanceMetric.EUCLIDEAN)
    assert np.all(d >= 0)
    d_self = distances_to_query(vectors, vectors[0], DistanceMetric.EUCLIDEAN)
    assert d_self[0] == pytest.approx(0.0, abs=1e-4)


# ---- SearchPage encoding ---------------------------------------------------------
@given(
    st.integers(min_value=0, max_value=GEOMETRY.total_luns - 1),
    st.integers(min_value=0, max_value=GEOMETRY.planes_per_lun - 1),
    st.integers(min_value=0, max_value=GEOMETRY.blocks_per_plane - 1),
    st.integers(min_value=0, max_value=GEOMETRY.pages_per_block - 1),
    st.sampled_from(list(DistanceType)),
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=15),
    st.booleans(),
)
@settings(max_examples=80, deadline=None)
def test_searchpage_roundtrip(lun, plane, block, page, dist, dim_code,
                              prec_code, loc):
    cmd = SearchPage(
        address=PhysicalAddress(lun=lun, plane=plane, block=block, page=page),
        distance=dist,
        fv_dim_code=dim_code,
        fv_prec_code=prec_code,
        page_loc_bit=loc,
    )
    assert SearchPage.decode(cmd.encode(GEOMETRY), GEOMETRY) == cmd


# ---- FTL refresh invariants -----------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=0,
                max_size=60))
@settings(max_examples=30, deadline=None)
def test_ftl_always_bijective(ops):
    ftl = FlashTranslationLayer(GEOMETRY, seed=11)
    for op in ops:
        lun = op % GEOMETRY.total_luns
        plane = (op // 7) % GEOMETRY.planes_per_lun
        block = (op // 13) % ftl.usable_blocks
        ftl.refresh_block(lun, plane, block)
    ftl.check_consistency()


# ---- placement invariants ----------------------------------------------------------------
@given(
    st.integers(min_value=1, max_value=800),
    st.sampled_from([32, 64, 128, 256]),
    st.sampled_from(["multiplane", "interleaved"]),
)
@settings(max_examples=40, deadline=None)
def test_placement_never_collides(n, vector_bytes, scheme):
    capacity = (
        GEOMETRY.total_planes
        * GEOMETRY.pages_per_plane
        * (GEOMETRY.page_size // vector_bytes)
    )
    if n > capacity:
        n = capacity
    placement = map_vertices(n, GEOMETRY, vector_bytes, scheme=scheme)
    keys = placement.page_keys(np.arange(n, dtype=np.int64))
    slots = placement.slot[:n]
    combined = set(zip(keys.tolist(), slots.tolist()))
    assert len(combined) == n


# ---- graph relabeling ------------------------------------------------------------------------
@st.composite
def random_graph(draw):
    n = draw(st.integers(min_value=2, max_value=24))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=60,
        )
    )
    adjacency = [sorted({b for a, b in edges if a == v and b != v})
                 for v in range(n)]
    vectors = np.zeros((n, 3), dtype=np.float32)
    return ProximityGraph.from_adjacency(vectors, adjacency)


@given(random_graph(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_relabel_preserves_edge_count_and_beta_of_inverse(graph, seed):
    rng = np.random.default_rng(seed)
    order = rng.permutation(graph.num_vertices)
    relabeled = graph.relabeled(order)
    assert relabeled.num_edges == graph.num_edges
    assert sorted(relabeled.degrees.tolist()) == sorted(graph.degrees.tolist())


@given(random_graph())
@settings(max_examples=30, deadline=None)
def test_degree_ascending_bfs_always_permutation(graph):
    order = degree_ascending_bfs(graph)
    assert sorted(order.tolist()) == list(range(graph.num_vertices))


@given(random_graph())
@settings(max_examples=30, deadline=None)
def test_beta_non_negative_and_bounded(graph):
    beta = bandwidth_beta(graph)
    assert 0.0 <= beta <= graph.num_vertices - 1
