"""Unit tests for search traces and remapping."""

import numpy as np

from repro.ann.trace import (
    IterationRecord,
    SearchTrace,
    TraceRecorder,
    remap_trace,
)


def _sample_trace():
    t = SearchTrace(query_id=3)
    t.iterations.append(IterationRecord(entry=0, computed=(1, 2)))
    t.iterations.append(IterationRecord(entry=1, computed=(3,)))
    t.iterations.append(IterationRecord(entry=3, computed=()))
    t.result_ids = np.array([1, 3])
    t.result_distances = np.array([0.1, 0.4])
    return t


class TestSearchTrace:
    def test_trace_length_counts_computed(self):
        assert _sample_trace().trace_length == 3

    def test_num_iterations(self):
        assert _sample_trace().num_iterations == 3

    def test_visited_order(self):
        assert _sample_trace().visited_vertices == [1, 2, 3]

    def test_entries(self):
        assert _sample_trace().entries == [0, 1, 3]


class TestTraceRecorder:
    def test_records_iterations_and_result(self):
        rec = TraceRecorder(query_id=7)
        rec.record_iteration(0, [4, 5])
        rec.record_iteration(4, np.array([6]))
        rec.record_result(np.array([4]), np.array([0.5]))
        trace = rec.finish()
        assert trace.query_id == 7
        assert trace.trace_length == 3
        assert trace.iterations[1].computed == (6,)
        assert trace.result_ids.tolist() == [4]


class TestRemap:
    def test_remap_rewrites_all_ids(self):
        trace = _sample_trace()
        new_id = np.array([10, 11, 12, 13])
        out = remap_trace(trace, new_id)
        assert out.iterations[0].entry == 10
        assert out.iterations[0].computed == (11, 12)
        assert out.result_ids.tolist() == [11, 13]

    def test_remap_preserves_structure(self):
        trace = _sample_trace()
        out = remap_trace(trace, np.arange(4))
        assert out.num_iterations == trace.num_iterations
        assert out.trace_length == trace.trace_length

    def test_remap_without_result(self):
        trace = SearchTrace(query_id=0)
        trace.iterations.append(IterationRecord(entry=1, computed=(0,)))
        out = remap_trace(trace, np.array([5, 6]))
        assert out.result_ids is None
        assert out.iterations[0].entry == 6
