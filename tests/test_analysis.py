"""Tests for locality metrics, breakdowns, roofline and reporting."""

import numpy as np
import pytest

from repro.analysis import (
    accessed_vector_fraction,
    cpu_breakdown,
    format_table,
    lun_coverage,
    ndsearch_breakdown,
    page_access_ratio,
    roofline_model,
)
from repro.analysis.locality import batch_page_accesses
from repro.analysis.roofline import operational_intensity
from repro.ann.trace import IterationRecord, SearchTrace
from repro.core.config import NDSearchConfig
from repro.core.placement import map_vertices
from repro.sim.stats import SimResult


@pytest.fixture()
def placement(tiny_geometry):
    return map_vertices(600, tiny_geometry, vector_bytes=64)


def _trace(vertex_lists):
    t = SearchTrace(query_id=0)
    for vs in vertex_lists:
        t.iterations.append(IterationRecord(entry=vs[0] if vs else 0,
                                            computed=tuple(vs)))
    return t


class TestLocalityMetrics:
    def test_page_access_ratio_perfect_locality(self, placement):
        vpp = placement.vectors_per_page
        trace = _trace([list(range(vpp))])  # one full page
        ratio = page_access_ratio([trace], placement)
        assert ratio == pytest.approx(1.0 / vpp)

    def test_page_access_ratio_scattered(self, placement):
        vpp = placement.vectors_per_page
        scattered = [0, vpp, 2 * vpp, 3 * vpp]  # one page each
        ratio = page_access_ratio([_trace([scattered])], placement)
        assert ratio == pytest.approx(1.0)

    def test_reordering_improves_ratio(self, small_hnsw, tiny_config,
                                       small_queries):
        """Fig. 14: our reordering lowers the page-access ratio versus
        no reordering."""
        from repro.ann.trace import remap_trace
        from repro.core import NDSearch, SchedulingFlags

        _, _, traces = small_hnsw.search_batch(small_queries, 5, ef=24)
        reordered = NDSearch(index=small_hnsw, config=tiny_config)
        plain = NDSearch(
            index=small_hnsw,
            config=tiny_config.with_flags(SchedulingFlags.bare()),
        )
        r_re = page_access_ratio(
            [remap_trace(t, reordered.new_id) for t in traces],
            reordered._model.placement,
        )
        r_plain = page_access_ratio(
            [remap_trace(t, plain.new_id) for t in traces],
            plain._model.placement,
        )
        assert r_re < r_plain

    def test_accessed_vector_fraction_bounds(self, placement):
        trace = _trace([[0, 1], [30, 60]])
        frac = accessed_vector_fraction([trace], placement, vector_bytes=64)
        assert 0.0 < frac <= 1.0

    def test_lun_coverage_full(self, placement, tiny_geometry):
        all_vertices = list(range(0, 600, 5))
        coverage = lun_coverage([_trace([all_vertices])], placement)
        assert coverage == 1.0

    def test_lun_coverage_partial(self, placement):
        vpp = placement.vectors_per_page
        coverage = lun_coverage([_trace([[0]])], placement)
        assert 0.0 < coverage < 1.0

    def test_batch_page_accesses_sharing(self, placement):
        traces = [_trace([[0, 1, 2]]) for _ in range(4)]
        shared = batch_page_accesses(traces, placement, shared=True)
        unshared = batch_page_accesses(traces, placement, shared=False)
        assert shared < unshared


class TestBreakdowns:
    def test_cpu_breakdown_groups(self):
        r = SimResult("cpu", "hnsw", "sift-1b", 8, 1.0, component_busy_s={
            "ssd_io_read": 0.7, "host_memory": 0.2, "compute": 0.05,
            "sort": 0.05,
        })
        frac = cpu_breakdown(r)
        assert frac["ssd_io_read"] == pytest.approx(0.7)
        assert frac["compute_and_sort"] == pytest.approx(0.3)

    def test_ndsearch_breakdown_sums_to_one(self):
        r = SimResult("ndsearch", "hnsw", "sift-1b", 8, 1.0, component_busy_s={
            "nand_read": 0.3, "dram": 0.2, "embedded_cores": 0.1,
            "vgenerator": 0.05, "allocator": 0.05, "fpga_sort": 0.1,
            "pcie_host": 0.05, "channel_bus": 0.15,
        })
        frac = ndsearch_breakdown(r)
        assert sum(frac.values()) == pytest.approx(1.0)
        assert frac["allocating"] == pytest.approx(0.1)

    def test_empty_breakdown(self):
        r = SimResult("cpu", "hnsw", "x", 1, 1.0)
        assert all(v == 0.0 for v in cpu_breakdown(r).values())


class TestRoofline:
    def test_operational_intensity(self):
        oi = operational_intensity(dim=128, vector_bytes=512, page_bytes=4096)
        assert oi == pytest.approx(3 * 128 / 4096)

    def test_lift_matches_bandwidth_ratio(self):
        cfg = NDSearchConfig.paper()
        point = roofline_model(cfg, dim=128, compute_peak_gflops=1e9)
        expected = cfg.internal_bandwidth / cfg.timing.pcie_host_bw
        assert point.lift == pytest.approx(expected, rel=1e-6)

    def test_compute_ceiling_caps_lift(self):
        cfg = NDSearchConfig.paper()
        point = roofline_model(cfg, dim=128, compute_peak_gflops=10.0)
        assert point.attainable_internal_gflops == 10.0

    def test_workload_is_bandwidth_bound(self):
        """Fig. 2(b): ANNS sits far below the compute ceiling."""
        cfg = NDSearchConfig.paper()
        point = roofline_model(cfg, dim=128)
        assert point.attainable_pcie_gflops < 10.0  # << 1000 GFLOP/s peak


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bbb"], [["x", 1.0], ["yy", 2.5]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456]])
        assert "0.123" in out
