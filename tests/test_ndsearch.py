"""Integration tests for the NDSearch top-level system."""

import numpy as np
import pytest

from repro.core import NDSearch, NDSearchConfig, SchedulingFlags


@pytest.fixture()
def system(small_hnsw, tiny_config):
    return NDSearch(index=small_hnsw, config=tiny_config)


class TestSearchBatch:
    def test_returns_results_and_simresult(self, system, small_queries):
        ids, dists, result = system.search_batch(small_queries, k=5, ef=24)
        assert ids.shape == (len(small_queries), 5)
        assert result.sim_time_s > 0
        assert result.platform == "ndsearch"
        assert result.power_w > 0

    def test_ids_in_original_numbering(self, system, small_vectors):
        queries = small_vectors[[3, 9, 27]]
        ids, dists, _ = system.search_batch(queries, k=1, ef=16)
        assert ids[:, 0].tolist() == [3, 9, 27]

    def test_energy_attached(self, system, small_queries):
        _, _, result = system.search_batch(small_queries, k=5, ef=24)
        assert 0 < result.power_w <= 26.32 + 1e-9  # paper total power


class TestReordering:
    def test_reorder_modes(self, small_hnsw, tiny_config):
        for mode in ("ours", "random_bfs", "none"):
            nd = NDSearch(index=small_hnsw, config=tiny_config, reorder_mode=mode)
            assert sorted(nd.order.tolist()) == list(
                range(nd.graph.num_vertices)
            )

    def test_unknown_mode_rejected(self, small_hnsw, tiny_config):
        with pytest.raises(ValueError):
            NDSearch(index=small_hnsw, config=tiny_config, reorder_mode="magic")

    def test_flags_disable_reordering(self, small_hnsw, tiny_config):
        nd = NDSearch(
            index=small_hnsw,
            config=tiny_config.with_flags(SchedulingFlags.bare()),
        )
        assert np.array_equal(nd.order, np.arange(nd.graph.num_vertices))

    def test_reordering_improves_beta(self, small_hnsw, tiny_config):
        from repro.core.static_scheduling import bandwidth_beta

        base = small_hnsw.base_graph()
        nd = NDSearch(index=small_hnsw, config=tiny_config)
        assert bandwidth_beta(base, nd.order) < bandwidth_beta(base)


class TestTraceSimulation:
    def test_simulate_traces_consistent_with_search(self, system, small_queries):
        _, _, via_search = system.search_batch(small_queries, k=5, ef=24)
        _, _, traces = system.index.search_batch(small_queries, 5, ef=24)
        via_traces = system.simulate_traces(traces)
        assert via_traces.sim_time_s == pytest.approx(
            via_search.sim_time_s, rel=1e-6
        )

    def test_speculative_counters_present(self, system, small_queries):
        _, _, result = system.search_batch(small_queries, k=5, ef=24)
        assert result.counters["speculative_page_reads"] > 0

    def test_flag_ablation_ordering(self, small_hnsw, tiny_config, small_queries):
        """Each added technique must not slow the system down, and the
        full configuration must beat bare (Fig. 16 shape)."""
        _, _, traces = small_hnsw.search_batch(small_queries, 5, ef=24)
        steps = [
            SchedulingFlags.bare(),
            SchedulingFlags(True, False, False, False),
            SchedulingFlags(True, True, False, False),
            SchedulingFlags(True, True, True, False),
            SchedulingFlags(True, True, True, True),
        ]
        times = []
        for flags in steps:
            nd = NDSearch(index=small_hnsw, config=tiny_config.with_flags(flags))
            times.append(nd.simulate_traces(traces).sim_time_s)
        assert times[-1] < times[0]
        assert times[3] <= times[2] * 1.02  # da never hurts
