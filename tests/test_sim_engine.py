"""Unit tests for the resource-timeline simulation engine."""

import pytest

from repro.sim.engine import Resource, ResourcePool, Timeline


class TestResource:
    def test_acquire_when_free_starts_immediately(self):
        r = Resource("bus")
        start, end = r.acquire(at=1.0, duration=2.0)
        assert start == 1.0
        assert end == 3.0

    def test_acquire_queues_behind_previous_work(self):
        r = Resource("bus")
        r.acquire(at=0.0, duration=5.0)
        start, end = r.acquire(at=1.0, duration=1.0)
        assert start == 5.0
        assert end == 6.0

    def test_busy_time_accumulates(self):
        r = Resource("bus")
        r.acquire(0.0, 2.0)
        r.acquire(0.0, 3.0)
        assert r.busy_time == 5.0
        assert r.operations == 2

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Resource("bus").acquire(0.0, -1.0)

    def test_zero_duration_is_allowed(self):
        start, end = Resource("bus").acquire(2.0, 0.0)
        assert start == end == 2.0

    def test_peek_does_not_book(self):
        r = Resource("bus")
        r.acquire(0.0, 4.0)
        assert r.peek(1.0) == 4.0
        assert r.operations == 1

    def test_utilization(self):
        r = Resource("bus")
        r.acquire(0.0, 2.0)
        assert r.utilization(4.0) == pytest.approx(0.5)
        assert r.utilization(0.0) == 0.0

    def test_utilization_caps_at_one(self):
        r = Resource("bus")
        r.acquire(0.0, 10.0)
        assert r.utilization(5.0) == 1.0

    def test_reset(self):
        r = Resource("bus")
        r.acquire(0.0, 2.0)
        r.reset()
        assert r.busy_time == 0.0
        assert r.next_free == 0.0


class TestResourcePool:
    def test_dispatches_to_idle_unit(self):
        pool = ResourcePool("lun", size=2)
        s1, _ = pool.acquire(0.0, 10.0)
        s2, _ = pool.acquire(0.0, 10.0)
        assert s1 == 0.0
        assert s2 == 0.0  # second unit was free

    def test_queues_when_all_units_busy(self):
        pool = ResourcePool("lun", size=2)
        pool.acquire(0.0, 10.0)
        pool.acquire(0.0, 4.0)
        start, _ = pool.acquire(0.0, 1.0)
        assert start == 4.0  # earliest-free unit wins

    def test_acquire_on_specific_unit(self):
        pool = ResourcePool("lun", size=3)
        pool.acquire_on(2, 0.0, 5.0)
        start, _ = pool.acquire_on(2, 0.0, 1.0)
        assert start == 5.0

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            ResourcePool("lun", size=0)

    def test_busy_time_aggregates_units(self):
        pool = ResourcePool("lun", size=2)
        pool.acquire(0.0, 3.0)
        pool.acquire(0.0, 4.0)
        assert pool.busy_time == 7.0


class TestTimeline:
    def test_lazy_resource_creation(self):
        tl = Timeline()
        r = tl.resource("channel0")
        assert tl.resource("channel0") is r

    def test_pool_size_conflict_raises(self):
        tl = Timeline()
        tl.pool("luns", 4)
        with pytest.raises(ValueError):
            tl.pool("luns", 8)

    def test_kind_conflict_raises(self):
        tl = Timeline()
        tl.resource("x")
        with pytest.raises(TypeError):
            tl.pool("x", 2)
        tl.pool("y", 2)
        with pytest.raises(TypeError):
            tl.resource("y")

    def test_advance_is_monotonic(self):
        tl = Timeline()
        tl.advance(5.0)
        tl.advance(3.0)
        assert tl.now == 5.0

    def test_busy_times_snapshot(self):
        tl = Timeline()
        tl.resource("a").acquire(0.0, 1.0)
        tl.pool("b", 2).acquire(0.0, 2.0)
        assert tl.busy_times() == {"a": 1.0, "b": 2.0}

    def test_reset_clears_everything(self):
        tl = Timeline()
        tl.resource("a").acquire(0.0, 1.0)
        tl.advance(9.0)
        tl.reset()
        assert tl.now == 0.0
        assert tl.resource("a").busy_time == 0.0
