"""repro.lint — the determinism / event-kernel invariant checker.

Every shipped rule gets at least one positive and one negative snippet
(so deleting a rule fails its test here), the PR 1 id()-key cache bug
is pinned as a regression fixture, and the committed baseline is
checked against a full self-run of the linter over the repo.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    Finding,
    lint_paths,
    lint_source,
    module_name_for,
    rule_ids,
)
from repro.lint.__main__ import main as lint_main
from repro.lint.runner import PARSE_ERROR_RULE

REPO_ROOT = Path(__file__).resolve().parent.parent


def rules_of(source: str, module: str | None = None) -> list[str]:
    """Rule ids found in a dedented snippet, in report order."""
    return [f.rule for f in lint_source(textwrap.dedent(source), module=module)]


# =============================================================================
# Rule registry
# =============================================================================
class TestRegistry:
    def test_all_seven_rules_registered(self):
        assert set(rule_ids()) >= {
            "DET001", "DET002", "DET003", "DET004", "DET005",
            "EVT001", "EVT002",
        }

    def test_module_name_for(self):
        assert module_name_for("src/repro/sim/events.py") == "repro.sim.events"
        assert module_name_for("src/repro/lint/__init__.py") == "repro.lint"
        assert module_name_for("tests/test_lint.py") is None
        # A stray `repro` dir not under src/ is out of package scope.
        assert module_name_for("other/repro/x.py") is None


# =============================================================================
# DET001 — id() as a dict/cache key
# =============================================================================
class TestDet001:
    def test_subscript_key_flagged(self):
        assert "DET001" in rules_of("cache[id(trace)] = entry\n")

    def test_get_flagged(self):
        assert "DET001" in rules_of("entry = cache.get(id(trace))\n")

    def test_setdefault_and_pop_flagged(self):
        assert "DET001" in rules_of("cache.setdefault(id(t), [])\n")
        assert "DET001" in rules_of("cache.pop(id(t), None)\n")

    def test_dict_comprehension_key_flagged(self):
        assert "DET001" in rules_of("d = {id(b): b for b in backends}\n")

    def test_key_named_tuple_flagged(self):
        assert "DET001" in rules_of("cache_key = (id(workload), batch)\n")

    def test_pr1_speculative_set_cache_regression(self):
        """The PR 1 bug, reintroduced verbatim in shape: an id()-keyed
        speculative-set cache with no pinned object — ids recycle after
        GC, so a dead trace's entry can hit for a fresh one."""
        findings = lint_source(textwrap.dedent(
            """
            class NDSearch:
                def simulate_traces(self, traces):
                    for trace in traces:
                        spec = self._spec_cache.get(id(trace))
                        if spec is None:
                            spec = precompute_speculative_sets([trace])
                            self._spec_cache[id(trace)] = spec
            """
        ))
        det = [f for f in findings if f.rule == "DET001"]
        assert len(det) == 2
        assert {f.line for f in det} == {5, 8}

    def test_identity_comparison_not_flagged(self):
        assert rules_of("same = id(a) == id(b)\n") == []

    def test_plain_id_call_not_flagged(self):
        assert rules_of("print(id(obj))\n") == []

    def test_pinned_idiom_with_pragma_clean(self):
        src = (
            "entry = cache.get(id(t))  # repro-lint: disable=DET001\n"
            "if entry is None or entry[0] is not t:\n"
            "    cache[id(t)] = entry = (t, compute(t))"
            "  # repro-lint: disable=DET001\n"
        )
        assert lint_source(src) == []


# =============================================================================
# DET002 — wall clock / OS entropy in simulation code
# =============================================================================
class TestDet002:
    def test_time_time_flagged_in_sim_module(self):
        assert "DET002" in rules_of(
            "import time\nt = time.time()\n", module="repro.sim.engine"
        )

    def test_import_alias_resolved(self):
        assert "DET002" in rules_of(
            "import time as t\nnow = t.monotonic()\n", module="repro.serving.x"
        )

    def test_from_import_resolved(self):
        assert "DET002" in rules_of(
            "from time import perf_counter\nx = perf_counter()\n",
            module="repro.core.y",
        )
        assert "DET002" in rules_of(
            "from datetime import datetime\nd = datetime.now()\n",
            module="repro.core.y",
        )

    def test_os_urandom_flagged(self):
        assert "DET002" in rules_of(
            "import os\nb = os.urandom(8)\n", module="repro.flash.ftl"
        )

    def test_profiler_and_pool_allowlisted(self):
        src = "import time\nt0 = time.perf_counter()\n"
        assert rules_of(src, module="repro.obs.profile") == []
        assert rules_of(src, module="repro.sim.pool") == []

    def test_out_of_package_code_not_in_scope(self):
        # Tests/benchmarks measure wall-clock freely; the rule guards
        # simulation code only.
        assert rules_of("import time\nt = time.time()\n", module=None) == []

    def test_simulated_clock_not_flagged(self):
        assert rules_of(
            "def handler(loop):\n    return loop.now\n",
            module="repro.serving.frontend",
        ) == []


# =============================================================================
# DET003 — unseeded / global-state RNG
# =============================================================================
class TestDet003:
    def test_random_module_function_flagged(self):
        assert "DET003" in rules_of("import random\nx = random.random()\n")
        assert "DET003" in rules_of(
            "import random\nrandom.shuffle(items)\n"
        )

    def test_np_random_legacy_global_flagged(self):
        assert "DET003" in rules_of(
            "import numpy as np\nnp.random.seed(0)\n"
        )
        assert "DET003" in rules_of(
            "import numpy as np\nx = np.random.randint(10)\n"
        )

    def test_unseeded_default_rng_flagged(self):
        assert "DET003" in rules_of(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )

    def test_unseeded_random_random_flagged(self):
        assert "DET003" in rules_of("import random\nr = random.Random()\n")

    def test_seeded_generator_not_flagged(self):
        assert rules_of(
            "import numpy as np\nrng = np.random.default_rng(1234)\n"
        ) == []
        assert rules_of("import random\nr = random.Random(7)\n") == []

    def test_generator_annotation_not_flagged(self):
        assert rules_of(
            "import numpy as np\n"
            "def draw(rng: np.random.Generator) -> float:\n"
            "    return rng.random()\n"
        ) == []


# =============================================================================
# DET004 — ordering-sensitive set iteration (src/repro scope)
# =============================================================================
class TestDet004:
    MOD = "repro.serving.sharding"

    def test_for_over_set_call_flagged(self):
        assert "DET004" in rules_of(
            "for x in set(items):\n    emit(x)\n", module=self.MOD
        )

    def test_for_over_set_literal_flagged(self):
        assert "DET004" in rules_of(
            "for x in {a, b, c}:\n    emit(x)\n", module=self.MOD
        )

    def test_list_of_set_union_flagged(self):
        assert "DET004" in rules_of(
            "order = list(set(a) | set(b))\n", module=self.MOD
        )

    def test_listcomp_over_set_flagged(self):
        assert "DET004" in rules_of(
            "ys = [f(x) for x in {a, b}]\n", module=self.MOD
        )

    def test_sorted_set_not_flagged(self):
        assert rules_of("order = sorted(set(a) | set(b))\n", module=self.MOD) == []
        assert rules_of(
            "for x in sorted({a, b, c}):\n    emit(x)\n", module=self.MOD
        ) == []

    def test_order_free_reducers_not_flagged(self):
        assert rules_of(
            "total = sum(f(x) for x in {a, b})\n", module=self.MOD
        ) == []

    def test_membership_not_flagged(self):
        # (module-level list assignment trips DET005, which is not
        # under test here — only the set-iteration rule's verdict is)
        assert "DET004" not in rules_of(
            "fresh = [t for t in due if t not in pending]\n", module=self.MOD
        )

    def test_out_of_package_not_in_scope(self):
        assert rules_of("for x in set(items):\n    emit(x)\n", module=None) == []


# =============================================================================
# DET005 — module-level mutable state in serving/sim code
# =============================================================================
class TestDet005:
    MOD = "repro.serving.frontend"

    def test_module_level_dict_literal_flagged(self):
        assert "DET005" in rules_of("_cache = {}\n", module=self.MOD)

    def test_module_level_list_call_flagged(self):
        assert "DET005" in rules_of("_log = list()\n", module=self.MOD)

    def test_annotated_module_level_dict_flagged(self):
        assert "DET005" in rules_of(
            "_cache: dict[tuple, tuple] = {}\n", module=self.MOD
        )

    def test_collections_factories_flagged(self):
        assert "DET005" in rules_of(
            "from collections import defaultdict\n"
            "_counts = defaultdict(int)\n",
            module="repro.sim.events",
        )
        assert "DET005" in rules_of(
            "from collections import OrderedDict\n"
            "_lru = OrderedDict()\n",
            module=self.MOD,
        )

    def test_comprehensions_flagged(self):
        assert "DET005" in rules_of(
            "_by_name = {n: [] for n in NAMES}\n", module=self.MOD
        )

    def test_immutable_module_constants_not_flagged(self):
        assert rules_of(
            "LIMIT = 32\n"
            "RANKS = (5, 10, 20)\n"
            "MODES = frozenset({'a', 'b'})\n",
            module=self.MOD,
        ) == []

    def test_function_and_class_scope_not_flagged(self):
        assert rules_of(
            "def build():\n"
            "    cache = {}\n"
            "    return cache\n"
            "class Router:\n"
            "    def __init__(self):\n"
            "        self.table = {}\n",
            module=self.MOD,
        ) == []

    def test_dunder_assignments_not_flagged(self):
        assert rules_of(
            "__all__ = ['ServingFrontend']\n", module="repro.serving"
        ) == []

    def test_outside_serving_and_sim_not_in_scope(self):
        assert rules_of("_cache = {}\n", module="repro.obs.trace") == []
        assert rules_of("_cache = {}\n", module=None) == []

    def test_pragma_suppresses(self):
        assert rules_of(
            "_build_cache: dict = {}  # repro-lint: disable=DET005\n",
            module="repro.serving.sharding",
        ) == []


# =============================================================================
# EVT001 — event subclass shape + unique RANK
# =============================================================================
GOOD_EVENTS = """
    from dataclasses import dataclass
    from typing import Any, ClassVar
    from repro.sim.events import Event

    @dataclass(frozen=True, slots=True)
    class CacheWarm(Event):
        RANK: ClassVar[int] = 70
        payload: Any = None

    @dataclass(frozen=True, slots=True)
    class CacheCool(CacheWarm):
        RANK: ClassVar[int] = 71
"""


class TestEvt001:
    def test_well_formed_events_clean(self):
        assert rules_of(GOOD_EVENTS) == []

    def test_missing_frozen_flagged(self):
        assert "EVT001" in rules_of(
            """
            from dataclasses import dataclass
            from typing import ClassVar
            from repro.sim.events import Event

            @dataclass(slots=True)
            class Wobbly(Event):
                RANK: ClassVar[int] = 70
            """
        )

    def test_missing_slots_flagged(self):
        assert "EVT001" in rules_of(
            """
            from dataclasses import dataclass
            from typing import ClassVar
            from repro.sim.events import Event

            @dataclass(frozen=True)
            class Heavy(Event):
                RANK: ClassVar[int] = 70
            """
        )

    def test_not_a_dataclass_flagged(self):
        assert "EVT001" in rules_of(
            """
            from repro.sim.events import Event

            class Bare(Event):
                RANK = 70
            """
        )

    def test_missing_rank_flagged(self):
        findings = rules_of(
            """
            from dataclasses import dataclass
            from repro.sim.events import Event

            @dataclass(frozen=True, slots=True)
            class Unranked(Event):
                pass
            """
        )
        assert "EVT001" in findings

    def test_duplicate_rank_flagged(self):
        findings = lint_source(textwrap.dedent(
            """
            from dataclasses import dataclass
            from typing import ClassVar
            from repro.sim.events import Event

            @dataclass(frozen=True, slots=True)
            class A(Event):
                RANK: ClassVar[int] = 70

            @dataclass(frozen=True, slots=True)
            class B(Event):
                RANK: ClassVar[int] = 70
            """
        ))
        dups = [f for f in findings if f.rule == "EVT001"]
        assert len(dups) == 1 and "reuses RANK=70" in dups[0].message

    def test_transitive_subclass_recognised(self):
        # CacheCool in GOOD_EVENTS subclasses a *local* event class; a
        # duplicate rank on it must still be caught.
        bad = GOOD_EVENTS.replace("RANK: ClassVar[int] = 71",
                                  "RANK: ClassVar[int] = 70")
        assert "EVT001" in rules_of(bad)

    def test_kernel_module_itself_clean(self):
        events_py = REPO_ROOT / "src" / "repro" / "sim" / "events.py"
        findings = lint_source(
            events_py.read_text(),
            path="src/repro/sim/events.py",
            module="repro.sim.events",
        )
        assert findings == []


# =============================================================================
# EVT002 — mutation of event-typed handler parameters
# =============================================================================
class TestEvt002:
    def test_attribute_assignment_flagged(self):
        assert "EVT002" in rules_of(
            """
            from repro.sim.events import Arrival

            def on_arrival(event: Arrival) -> None:
                event.time = 0.0
            """
        )

    def test_string_annotation_flagged(self):
        assert "EVT002" in rules_of(
            'def on_tick(ev: "EpochTick") -> None:\n    ev.count += 1\n'
        )

    def test_object_setattr_bypass_flagged(self):
        assert "EVT002" in rules_of(
            """
            from repro.sim.events import Completion

            def on_done(event: Completion) -> None:
                object.__setattr__(event, "payload", None)
            """
        )

    def test_reads_and_locals_not_flagged(self):
        assert rules_of(
            """
            from repro.sim.events import Arrival

            def on_arrival(event: Arrival) -> None:
                t = event.time
                request = event.payload
                request.note = t
            """
        ) == []

    def test_untyped_param_not_flagged(self):
        # Only annotation-identified event params are in scope: an
        # untyped `event` name may be anything.
        assert rules_of(
            "def f(event):\n    event.x = 1\n"
        ) == []


# =============================================================================
# Pragmas
# =============================================================================
class TestPragmas:
    def test_disable_specific_rule(self):
        assert rules_of(
            "cache[id(t)] = 1  # repro-lint: disable=DET001\n"
        ) == []

    def test_disable_all(self):
        assert rules_of(
            "cache[id(t)] = 1  # repro-lint: disable=all\n"
        ) == []

    def test_wrong_rule_id_does_not_suppress(self):
        assert "DET001" in rules_of(
            "cache[id(t)] = 1  # repro-lint: disable=DET002\n"
        )

    def test_pragma_is_line_scoped(self):
        findings = rules_of(
            "cache[id(a)] = 1  # repro-lint: disable=DET001\n"
            "cache[id(b)] = 2\n"
        )
        assert findings == ["DET001"]


# =============================================================================
# Baseline
# =============================================================================
class TestBaseline:
    def test_committed_baseline_round_trips(self):
        path = REPO_ROOT / "lint_baseline.json"
        text = path.read_text()
        assert Baseline.loads(text).dumps() == text

    def test_split_is_a_multiset(self):
        f = Finding(path="x.py", line=3, col=0, rule="DET001",
                    message="m", content="cache[id(t)] = 1")
        dup = Finding(path="x.py", line=9, col=0, rule="DET001",
                      message="m", content="cache[id(t)] = 1")
        baseline = Baseline.from_findings([f])
        new, old = baseline.split([f, dup])
        assert len(old) == 1 and len(new) == 1

    def test_line_drift_still_matches(self):
        f = Finding(path="x.py", line=3, col=0, rule="DET001",
                    message="m", content="cache[id(t)] = 1")
        drifted = Finding(path="x.py", line=30, col=0, rule="DET001",
                          message="m", content="cache[id(t)] = 1")
        new, old = Baseline.from_findings([f]).split([drifted])
        assert new == [] and old == [drifted]

    def test_edited_line_resurfaces(self):
        f = Finding(path="x.py", line=3, col=0, rule="DET001",
                    message="m", content="cache[id(t)] = 1")
        edited = Finding(path="x.py", line=3, col=0, rule="DET001",
                         message="m", content="cache[id(u)] = 1")
        new, _ = Baseline.from_findings([f]).split([edited])
        assert new == [edited]

    def test_version_mismatch_rejected(self):
        with pytest.raises(ValueError, match="version"):
            Baseline.loads('{"version": 99, "findings": []}')


# =============================================================================
# Runner + CLI (self-run against the real repo)
# =============================================================================
class TestSelfRun:
    def test_repo_lints_clean_against_committed_baseline(self):
        """`python -m repro.lint src tests benchmarks` exits 0."""
        assert lint_main(
            ["src", "tests", "benchmarks", "--root", str(REPO_ROOT)]
        ) == 0

    def test_default_paths_come_from_pytest_ini(self):
        assert lint_main(["--root", str(REPO_ROOT)]) == 0

    def test_cli_subprocess_smoke(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--list-rules"],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "DET001" in proc.stdout and "EVT002" in proc.stdout


class TestCli:
    @pytest.fixture()
    def dirty_tree(self, tmp_path: Path) -> Path:
        pkg = tmp_path / "src" / "repro" / "simx"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "import time\n"
            "def stamp(cache, obj):\n"
            "    cache[id(obj)] = time.time()\n"
        )
        return tmp_path

    def test_findings_exit_1_and_json_report(self, dirty_tree: Path, capsys):
        code = lint_main(
            ["src", "--root", str(dirty_tree), "--format", "json"]
        )
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        rules = {f["rule"] for f in report["new"]}
        assert rules == {"DET001", "DET002"}
        assert report["counts"]["new"] == 2

    def test_out_file_written(self, dirty_tree: Path, tmp_path: Path):
        out = tmp_path / "report.json"
        lint_main(["src", "--root", str(dirty_tree), "--out", str(out)])
        report = json.loads(out.read_text())
        assert report["counts"]["new"] == 2

    def test_write_baseline_then_clean(self, dirty_tree: Path):
        assert lint_main(["src", "--root", str(dirty_tree),
                          "--write-baseline"]) == 0
        assert lint_main(["src", "--root", str(dirty_tree)]) == 0
        # ... and the gate still catches anything new.
        (dirty_tree / "src" / "repro" / "simx" / "worse.py").write_text(
            "d = {id(k): v for k, v in pairs}\n"
        )
        assert lint_main(["src", "--root", str(dirty_tree)]) == 1

    def test_written_baseline_round_trips(self, dirty_tree: Path):
        lint_main(["src", "--root", str(dirty_tree), "--write-baseline"])
        path = dirty_tree / "lint_baseline.json"
        assert Baseline.loads(path.read_text()).dumps() == path.read_text()

    def test_no_baseline_flag_resurfaces_everything(self, dirty_tree: Path):
        lint_main(["src", "--root", str(dirty_tree), "--write-baseline"])
        assert lint_main(["src", "--root", str(dirty_tree),
                          "--no-baseline"]) == 1

    def test_disable_skips_rule(self, dirty_tree: Path):
        assert lint_main(
            ["src", "--root", str(dirty_tree), "--disable", "DET001,DET002"]
        ) == 0

    def test_unknown_disable_is_usage_error(self, dirty_tree: Path):
        assert lint_main(
            ["src", "--root", str(dirty_tree), "--disable", "NOPE99"]
        ) == 2

    def test_missing_path_is_usage_error(self, tmp_path: Path):
        assert lint_main(["nowhere", "--root", str(tmp_path)]) == 2

    def test_syntax_error_reported_not_fatal(self, tmp_path: Path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        (tmp_path / "fine.py").write_text("cache[id(x)] = 1\n")
        code = lint_main([".", "--root", str(tmp_path), "--format", "json"])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        rules = {f["rule"] for f in report["new"]}
        assert rules == {PARSE_ERROR_RULE, "DET001"}

    def test_lint_paths_accepts_single_file(self, dirty_tree: Path):
        report = lint_paths(
            ["src/repro/simx/bad.py"], root=dirty_tree
        )
        assert {f.rule for f in report.findings} == {"DET001", "DET002"}
        assert report.files_scanned == 1
