"""Unit tests for SSD geometry and addressing."""

import pytest

from repro.flash.geometry import PhysicalAddress, SSDGeometry


class TestPresets:
    def test_paper_preset_matches_section_iv(self):
        g = SSDGeometry.paper()
        assert g.channels == 32
        assert g.chips_per_channel == 4
        assert g.total_luns == 256  # 256 LUN-level accelerators
        assert g.planes_per_lun == 2
        assert g.page_size == 16 * 1024
        assert g.capacity_bytes == 512 * 1024**3  # 512 GB SiN capacity

    def test_paper_row_address_fits_26_bits(self):
        g = SSDGeometry.paper()
        assert g.row_address_bits <= 26  # Fig. 9(b) field width

    def test_scaled_preset_shape(self):
        g = SSDGeometry.scaled()
        assert g.total_luns == 16
        assert g.planes_per_lun == 2

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SSDGeometry(channels=0)


class TestCoordinates:
    def test_lun_channel_chip_roundtrip(self, tiny_geometry):
        g = tiny_geometry
        for lun in range(g.total_luns):
            channel = g.channel_of_lun(lun)
            chip = g.chip_of_lun(lun)
            local = g.lun_within_chip(lun)
            assert g.global_lun(channel, chip % g.chips_per_channel, local) == lun

    def test_lun_out_of_range(self, tiny_geometry):
        with pytest.raises(ValueError):
            tiny_geometry.channel_of_lun(tiny_geometry.total_luns)

    def test_validate_rejects_bad_fields(self, tiny_geometry):
        g = tiny_geometry
        good = PhysicalAddress(lun=0, plane=0, block=0, page=0)
        g.validate(good)
        for bad in (
            PhysicalAddress(lun=g.total_luns, plane=0, block=0, page=0),
            PhysicalAddress(lun=0, plane=g.planes_per_lun, block=0, page=0),
            PhysicalAddress(lun=0, plane=0, block=g.blocks_per_plane, page=0),
            PhysicalAddress(lun=0, plane=0, block=0, page=g.pages_per_block),
            PhysicalAddress(lun=0, plane=0, block=0, page=0, byte=g.page_size),
        ):
            with pytest.raises(ValueError):
                g.validate(bad)


class TestFlatPages:
    def test_flat_page_roundtrip(self, tiny_geometry):
        g = tiny_geometry
        total = g.total_planes * g.pages_per_plane
        for flat in range(0, total, 7):
            addr = g.address_of_flat_page(flat)
            assert g.flat_page_index(addr) == flat

    def test_flat_page_out_of_range(self, tiny_geometry):
        g = tiny_geometry
        with pytest.raises(ValueError):
            g.address_of_flat_page(g.total_planes * g.pages_per_plane)

    def test_page_key_distinct_per_page(self, tiny_geometry):
        g = tiny_geometry
        keys = set()
        for flat in range(g.total_planes * g.pages_per_plane):
            keys.add(g.page_key(g.address_of_flat_page(flat)))
        assert len(keys) == g.total_planes * g.pages_per_plane


class TestRowAddress:
    def test_row_address_unique(self, tiny_geometry):
        g = tiny_geometry
        seen = set()
        for flat in range(g.total_planes * g.pages_per_plane):
            addr = g.address_of_flat_page(flat)
            row = addr.row_address(g)
            assert row not in seen
            seen.add(row)

    def test_column_address_is_byte(self):
        addr = PhysicalAddress(lun=0, plane=0, block=0, page=0, byte=77)
        assert addr.column_address() == 77

    def test_derived_sizes_consistent(self, tiny_geometry):
        g = tiny_geometry
        assert g.total_planes == g.total_luns * g.planes_per_lun
        assert g.capacity_bytes == (
            g.total_planes * g.pages_per_plane * g.page_size
        )
        assert g.block_size == g.pages_per_block * g.page_size
