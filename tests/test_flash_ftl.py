"""Unit tests for the FTL block-refresh mechanism (Section II-B2)."""

import numpy as np
import pytest

from repro.flash.ftl import FlashTranslationLayer
from repro.flash.timing import FlashTiming


class TestTranslation:
    def test_identity_before_refresh(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry)
        assert ftl.physical_block(0, 0, 3) == 3

    def test_out_of_range_logical_block(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry)
        with pytest.raises(ValueError):
            ftl.physical_block(0, 0, ftl.usable_blocks)

    def test_reservation_bounds(self, tiny_geometry):
        with pytest.raises(ValueError):
            FlashTranslationLayer(tiny_geometry, reserved_per_plane=0)
        with pytest.raises(ValueError):
            FlashTranslationLayer(
                tiny_geometry, reserved_per_plane=tiny_geometry.blocks_per_plane
            )


class TestRefresh:
    def test_refresh_moves_within_plane(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry)
        event = ftl.refresh_block(1, 1, 2)
        assert event.lun == 1
        assert event.plane == 1
        assert event.new_block != event.old_block
        assert ftl.physical_block(1, 1, 2) == event.new_block

    def test_old_block_becomes_reusable(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry, reserved_per_plane=1)
        # With one spare, repeated refreshes must recycle old blocks.
        for _ in range(10):
            ftl.refresh_block(0, 0, 0)
        ftl.check_consistency()

    def test_subscriber_callback_fired(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry)
        events = []
        ftl.subscribe(events.append)
        ftl.refresh_block(0, 1, 4)
        assert len(events) == 1
        assert events[0].plane == 1

    def test_random_refreshes_keep_consistency(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry, seed=5)
        ftl.refresh_random_blocks(200)
        ftl.check_consistency()
        assert len(ftl.refresh_log) == 200

    def test_mapping_stays_bijective_after_refresh(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry)
        ftl.refresh_random_blocks(50)
        for lun in range(tiny_geometry.total_luns):
            for plane in range(tiny_geometry.planes_per_lun):
                mapped = [
                    ftl.physical_block(lun, plane, b)
                    for b in range(ftl.usable_blocks)
                ]
                assert len(set(mapped)) == len(mapped)

    def test_refresh_latency_model(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry)
        event = ftl.refresh_block(0, 0, 0)
        timing = FlashTiming()
        latency = event.latency_s(timing, pages_valid=4)
        expected = 4 * (timing.read_page_s + timing.program_page_s)
        expected += timing.erase_block_s
        assert latency == pytest.approx(expected)


class TestReadAccounting:
    def test_record_reads_reports_threshold_crossers(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry, read_disturb_threshold=10)
        luns = np.array([0, 0, 1])
        planes = np.array([0, 0, 1])
        blocks = np.array([2, 2, 3])
        due = ftl.record_reads(luns, planes, blocks, np.array([4, 4, 3]))
        assert due == []  # 8 and 3 reads: nobody crossed yet
        due = ftl.record_reads(luns, planes, blocks, np.array([1, 1, 7]))
        assert due == [(0, 0, 2), (1, 1, 3)]

    def test_record_reads_deduplicates_repeated_triples(self, tiny_geometry):
        # The same (lun, plane, block) appearing several times in one
        # bulk call accumulates (np.add.at semantics) and is reported
        # once, not once per occurrence.
        ftl = FlashTranslationLayer(tiny_geometry, read_disturb_threshold=5)
        luns = np.array([1, 1, 1])
        planes = np.array([0, 0, 0])
        blocks = np.array([4, 4, 4])
        due = ftl.record_reads(luns, planes, blocks, np.array([2, 2, 2]))
        assert due == [(1, 0, 4)]
        assert ftl.read_counts[1, 0, 4] == 6

    def test_refresh_resets_disturb_counter(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry, read_disturb_threshold=3)
        one = np.array([0])
        ftl.record_reads(one, one, np.array([2]), np.array([3]))
        ftl.refresh_block(0, 0, 2)
        assert ftl.read_counts[0, 0, 2] == 0

    def test_write_amplification_accounting(self, tiny_geometry):
        # Host programs charge both counters; refresh relocations only
        # the NAND one — so WA = nand / host grows past 1.0 with GC.
        ftl = FlashTranslationLayer(tiny_geometry)
        ftl.program_block(0, 0, 1)  # full block: pages_per_block pages
        pages = tiny_geometry.pages_per_block
        assert ftl.host_pages_written == pages
        assert ftl.nand_pages_written == pages
        assert ftl.gc_summary()["write_amplification"] == pytest.approx(1.0)
        ftl.refresh_block(0, 0, 1)
        summary = ftl.gc_summary()
        assert summary["nand_pages_written"] == 2 * pages
        assert summary["write_amplification"] == pytest.approx(2.0)
        assert summary["refreshes"] == 1
        assert summary["total_erases"] == 1

    def test_erase_in_place_counts_wear_without_relocating(
        self, tiny_geometry
    ):
        ftl = FlashTranslationLayer(tiny_geometry)
        phys = ftl.physical_block(0, 1, 3)
        ftl.erase_block_in_place(0, 1, 3)
        assert ftl.physical_block(0, 1, 3) == phys  # mapping untouched
        assert ftl.erase_counts[0, 1, phys] == 1
        assert ftl.read_counts[0, 1, 3] == 0


class TestRefreshStormProperty:
    """Satellite property: a mirror that replays the subscription feed
    reconstructs the FTL's exact mapping — every relocation is
    published exactly once, in order, and the mapping stays a
    per-plane bijection through randomized refresh storms."""

    @pytest.mark.parametrize("seed", (3, 17, 91))
    def test_mirror_reconstructs_mapping(self, tiny_geometry, seed):
        ftl = FlashTranslationLayer(
            tiny_geometry, reserved_per_plane=2, seed=seed
        )
        # The mirror starts from the identity mapping and applies each
        # published RefreshEvent; double-delivery or a missed event
        # would desynchronize it from the FTL immediately.  Events name
        # physical blocks, so the mirror finds the (unique, by
        # bijectivity) logical entry currently mapped to the old one.
        mirror = {
            (lun, plane, block): block
            for lun in range(tiny_geometry.total_luns)
            for plane in range(tiny_geometry.planes_per_lun)
            for block in range(ftl.usable_blocks)
        }
        seen = []

        def apply(event):
            owners = [
                key for key, phys in mirror.items()
                if key[:2] == (event.lun, event.plane)
                and phys == event.old_block
            ]
            assert len(owners) == 1, owners
            mirror[owners[0]] = event.new_block
            seen.append(event)

        ftl.subscribe(apply)
        rng = np.random.default_rng(seed)
        storms = 0
        for _ in range(40):
            # A storm: a burst of reads that pushes a random batch of
            # blocks over the threshold, then refreshes every one — the
            # shape FlashBackedStore.perform_refreshes drives online.
            n = int(rng.integers(1, 6))
            luns = rng.integers(0, tiny_geometry.total_luns, size=n)
            planes = rng.integers(0, tiny_geometry.planes_per_lun, size=n)
            blocks = rng.integers(0, ftl.usable_blocks, size=n)
            ftl.record_reads(
                luns, planes, blocks,
                np.full(n, ftl.read_disturb_threshold),
            )
            for lun, plane, block in zip(luns, planes, blocks):
                ftl.refresh_block(int(lun), int(plane), int(block))
                storms += 1
        ftl.check_consistency()
        assert len(seen) == storms == len(ftl.refresh_log)
        assert seen == ftl.refresh_log  # same events, same order
        for (lun, plane, block), phys in mirror.items():
            assert ftl.physical_block(lun, plane, block) == phys
