"""Unit tests for the FTL block-refresh mechanism (Section II-B2)."""

import pytest

from repro.flash.ftl import FlashTranslationLayer
from repro.flash.timing import FlashTiming


class TestTranslation:
    def test_identity_before_refresh(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry)
        assert ftl.physical_block(0, 0, 3) == 3

    def test_out_of_range_logical_block(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry)
        with pytest.raises(ValueError):
            ftl.physical_block(0, 0, ftl.usable_blocks)

    def test_reservation_bounds(self, tiny_geometry):
        with pytest.raises(ValueError):
            FlashTranslationLayer(tiny_geometry, reserved_per_plane=0)
        with pytest.raises(ValueError):
            FlashTranslationLayer(
                tiny_geometry, reserved_per_plane=tiny_geometry.blocks_per_plane
            )


class TestRefresh:
    def test_refresh_moves_within_plane(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry)
        event = ftl.refresh_block(1, 1, 2)
        assert event.lun == 1
        assert event.plane == 1
        assert event.new_block != event.old_block
        assert ftl.physical_block(1, 1, 2) == event.new_block

    def test_old_block_becomes_reusable(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry, reserved_per_plane=1)
        # With one spare, repeated refreshes must recycle old blocks.
        for _ in range(10):
            ftl.refresh_block(0, 0, 0)
        ftl.check_consistency()

    def test_subscriber_callback_fired(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry)
        events = []
        ftl.subscribe(events.append)
        ftl.refresh_block(0, 1, 4)
        assert len(events) == 1
        assert events[0].plane == 1

    def test_random_refreshes_keep_consistency(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry, seed=5)
        ftl.refresh_random_blocks(200)
        ftl.check_consistency()
        assert len(ftl.refresh_log) == 200

    def test_mapping_stays_bijective_after_refresh(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry)
        ftl.refresh_random_blocks(50)
        for lun in range(tiny_geometry.total_luns):
            for plane in range(tiny_geometry.planes_per_lun):
                mapped = [
                    ftl.physical_block(lun, plane, b)
                    for b in range(ftl.usable_blocks)
                ]
                assert len(set(mapped)) == len(mapped)

    def test_refresh_latency_model(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry)
        event = ftl.refresh_block(0, 0, 0)
        timing = FlashTiming()
        latency = event.latency_s(timing, pages_valid=4)
        expected = 4 * (timing.read_page_s + timing.program_page_s)
        expected += timing.erase_block_s
        assert latency == pytest.approx(expected)
