"""Tests for the trace-driven SearSSD timing model."""

import numpy as np
import pytest

from repro.ann.trace import IterationRecord, SearchTrace
from repro.core.config import SchedulingFlags
from repro.core.placement import map_vertices
from repro.core.searssd import SearSSDModel
from repro.flash.ecc import LDPCModel


def _make_traces(n_queries, iterations, vertices_per_iter, n_vertices, seed=0):
    rng = np.random.default_rng(seed)
    traces = []
    for q in range(n_queries):
        t = SearchTrace(query_id=q)
        for _ in range(iterations):
            entry = int(rng.integers(n_vertices))
            computed = tuple(
                int(v) for v in rng.choice(n_vertices, vertices_per_iter,
                                           replace=False)
            )
            t.iterations.append(IterationRecord(entry=entry, computed=computed))
        traces.append(t)
    return traces


@pytest.fixture()
def model(tiny_config):
    placement = map_vertices(600, tiny_config.geometry, 64)
    return SearSSDModel(config=tiny_config, placement=placement, dim=16)


class TestBasicRun:
    def test_nonzero_makespan_and_counters(self, model):
        traces = _make_traces(8, 5, 6, 600)
        result = model.run_batch(traces)
        assert result.sim_time_s > 0
        assert result.counters["page_reads"] > 0
        assert result.counters["distance_computations"] == 8 * 5 * 6
        assert result.qps > 0

    def test_empty_batch(self, model):
        result = model.run_batch([])
        assert result.sim_time_s == 0.0

    def test_busy_components_populated(self, model):
        result = model.run_batch(_make_traces(4, 3, 4, 600))
        for key in ("nand_read", "vgenerator", "allocator", "fpga_sort",
                    "pcie_host"):
            assert result.component_busy_s[key] > 0

    def test_more_queries_more_time(self, model):
        small = model.run_batch(_make_traces(4, 5, 6, 600, seed=1))
        large = model.run_batch(_make_traces(32, 5, 6, 600, seed=1))
        assert large.sim_time_s > small.sim_time_s


class TestSchedulingEffects:
    def test_dynamic_alloc_reduces_page_reads(self, tiny_config):
        placement = map_vertices(600, tiny_config.geometry, 64)
        # Queries share targets heavily: same trace for everyone.
        base = _make_traces(1, 6, 8, 600, seed=2)[0]
        traces = []
        for q in range(16):
            t = SearchTrace(query_id=q)
            t.iterations = list(base.iterations)
            traces.append(t)
        on = SearSSDModel(
            config=tiny_config.with_flags(
                SchedulingFlags(True, True, True, False)
            ),
            placement=placement,
            dim=16,
        ).run_batch(traces)
        off = SearSSDModel(
            config=tiny_config.with_flags(
                SchedulingFlags(True, True, False, False)
            ),
            placement=placement,
            dim=16,
        ).run_batch(traces)
        assert on.counters["page_reads"] < off.counters["page_reads"]
        assert on.sim_time_s < off.sim_time_s

    def test_multiplane_merging_counted(self, tiny_config):
        placement = map_vertices(600, tiny_config.geometry, 64, scheme="multiplane")
        vpp = placement.vectors_per_page
        # Accesses deliberately span sibling planes at equal pages.
        t = SearchTrace(query_id=0)
        t.iterations.append(IterationRecord(entry=0, computed=(0, vpp)))
        model = SearSSDModel(config=tiny_config, placement=placement, dim=16)
        result = model.run_batch([t])
        assert result.counters["multiplane_reads"] == 1

    def test_cached_vertices_skip_nand(self, tiny_config):
        placement = map_vertices(600, tiny_config.geometry, 64)
        traces = _make_traces(4, 4, 5, 600, seed=3)
        cached = np.arange(600, dtype=np.int64)  # everything cached
        model = SearSSDModel(
            config=tiny_config, placement=placement, dim=16,
            cached_vertices=cached,
        )
        result = model.run_batch(traces)
        # All demand accesses served from internal DRAM.
        demand_reads = (
            result.counters["page_reads"]
            - result.counters["speculative_page_reads"]
        )
        assert demand_reads == 0
        assert result.counters["cache_hits"] == 4 * 4 * 5


class TestSubBatching:
    def test_oversized_batch_splits(self, tiny_config):
        placement = map_vertices(600, tiny_config.geometry, 64)
        model = SearSSDModel(config=tiny_config, placement=placement, dim=16)
        capacity = tiny_config.max_batch_capacity
        single = model.run_batch(_make_traces(capacity, 3, 4, 600, seed=4))
        double = model.run_batch(_make_traces(2 * capacity, 3, 4, 600, seed=4))
        # Two sequential sub-batches: clearly more than one batch's time.
        assert double.sim_time_s > 1.8 * single.sim_time_s


class TestECCInjection:
    def test_soft_decodes_slow_the_batch(self, tiny_config):
        placement = map_vertices(600, tiny_config.geometry, 64)
        traces = _make_traces(8, 5, 6, 600, seed=5)
        clean = SearSSDModel(
            config=tiny_config, placement=placement, dim=16,
            ldpc=LDPCModel(hard_failure_prob=0.0),
        ).run_batch(traces)
        faulty = SearSSDModel(
            config=tiny_config, placement=placement, dim=16,
            ldpc=LDPCModel(hard_failure_prob=0.3),
        ).run_batch(traces)
        assert faulty.counters["ecc_soft_decodes"] > 0
        assert clean.counters["ecc_soft_decodes"] == 0
        assert faulty.sim_time_s > clean.sim_time_s
