"""Edge cases and failure injection across module boundaries."""

import numpy as np
import pytest

from repro.ann import HNSWIndex, HNSWParams
from repro.ann.trace import IterationRecord, SearchTrace
from repro.core import NDSearch, NDSearchConfig, SchedulingFlags
from repro.core.placement import map_vertices
from repro.core.searssd import SearSSDModel
from repro.flash.ecc import LDPCModel
from repro.flash.ftl import FlashTranslationLayer


class TestDegenerateInputs:
    def test_single_vertex_index(self):
        vectors = np.ones((1, 4), dtype=np.float32)
        index = HNSWIndex(vectors, HNSWParams(M=2, ef_construction=2))
        ids, dists = index.search(vectors[0], k=1, ef=1)
        assert ids.tolist() == [0]

    def test_two_vertex_index(self):
        vectors = np.array([[0.0] * 4, [1.0] * 4], dtype=np.float32)
        index = HNSWIndex(vectors, HNSWParams(M=2, ef_construction=2))
        ids, _ = index.search(np.full(4, 0.9, dtype=np.float32), k=2, ef=2)
        assert set(ids.tolist()) == {0, 1}

    def test_duplicate_vectors(self):
        vectors = np.ones((50, 8), dtype=np.float32)
        index = HNSWIndex(vectors, HNSWParams(M=4, ef_construction=8))
        ids, dists = index.search(vectors[0], k=3, ef=8)
        assert np.allclose(dists, 0.0)

    def test_trace_with_empty_iterations_simulates(self, tiny_config):
        placement = map_vertices(100, tiny_config.geometry, 64)
        model = SearSSDModel(config=tiny_config, placement=placement, dim=16)
        trace = SearchTrace(query_id=0)
        trace.iterations.append(IterationRecord(entry=0, computed=()))
        trace.iterations.append(IterationRecord(entry=1, computed=(2, 3)))
        result = model.run_batch([trace])
        assert result.sim_time_s > 0

    def test_batch_of_one(self, small_hnsw, tiny_config, small_queries):
        nd = NDSearch(index=small_hnsw, config=tiny_config)
        ids, dists, sim = nd.search_batch(small_queries[:1], k=3, ef=8)
        assert ids.shape == (1, 3)
        assert sim.batch_size == 1


class TestFailureInjection:
    def test_total_ecc_failure_still_completes(self, tiny_config):
        placement = map_vertices(200, tiny_config.geometry, 64)
        model = SearSSDModel(
            config=tiny_config,
            placement=placement,
            dim=16,
            ldpc=LDPCModel(hard_failure_prob=1.0),
        )
        trace = SearchTrace(query_id=0)
        trace.iterations.append(IterationRecord(entry=0, computed=(1, 50, 99)))
        result = model.run_batch([trace])
        assert result.counters["ecc_soft_decodes"] == result.counters[
            "ecc_hard_decodes"
        ]
        assert result.sim_time_s > 0

    def test_ftl_refuses_without_free_blocks(self, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry, reserved_per_plane=1)
        ftl._free[0][0] = []  # simulate exhaustion
        with pytest.raises(RuntimeError):
            ftl.refresh_block(0, 0, 0)

    def test_functional_search_survives_heavy_refresh(
        self, small_hnsw, tiny_config, small_queries
    ):
        """Refresh a large share of blocks, then verify the hardware
        path still returns correct results through LUNCSR."""
        nd = NDSearch(index=small_hnsw, config=tiny_config)
        before, _ = nd.search_batch_functional(small_queries[:3], k=3, ef=12)
        device = nd.device()
        rng = np.random.default_rng(0)
        for _ in range(40):
            lun = int(rng.integers(tiny_config.geometry.total_luns))
            plane = int(rng.integers(tiny_config.geometry.planes_per_lun))
            block = int(rng.integers(device.ssd.ftl.usable_blocks))
            device.ssd.refresh(lun, plane, block)
        after, _ = nd.search_batch_functional(small_queries[:3], k=3, ef=12)
        assert np.array_equal(before, after)


class TestPaperScaleConfig:
    def test_paper_geometry_simulates(self, small_hnsw, small_queries):
        """The full 512 GB / 256-LUN configuration runs end to end."""
        nd = NDSearch(index=small_hnsw, config=NDSearchConfig.paper())
        ids, dists, sim = nd.search_batch(small_queries[:4], k=5, ef=16)
        assert sim.sim_time_s > 0
        assert ids.shape == (4, 5)

    def test_paper_machine_scales_with_batch(self, small_hnsw, small_queries):
        """The 256-LUN machine absorbs a 4x larger batch with far less
        than 4x the latency (parallel headroom), unlike a single LUN's
        serial floor."""
        _, _, traces = small_hnsw.search_batch(small_queries, 5, ef=16)
        nd = NDSearch(index=small_hnsw, config=NDSearchConfig.paper())
        t_small = nd.simulate_traces(traces[:4]).sim_time_s
        t_large = nd.simulate_traces(traces[:16]).sim_time_s
        assert t_large < 3.0 * t_small


class TestFlagInteractions:
    @pytest.mark.parametrize("reorder", [False, True])
    @pytest.mark.parametrize("multiplane", [False, True])
    @pytest.mark.parametrize("dynamic_alloc", [False, True])
    @pytest.mark.parametrize("speculative", [False, True])
    def test_all_sixteen_flag_combinations_run(
        self, small_hnsw, tiny_config, small_queries,
        reorder, multiplane, dynamic_alloc, speculative,
    ):
        flags = SchedulingFlags(reorder, multiplane, dynamic_alloc, speculative)
        nd = NDSearch(index=small_hnsw, config=tiny_config.with_flags(flags))
        _, _, sim = nd.search_batch(small_queries[:4], k=3, ef=8)
        assert sim.sim_time_s > 0
        if not speculative:
            assert sim.counters["speculative_page_reads"] == 0
