"""Tests for the baseline platform models (CPU, GPU, SmartSSD, DS-c/cp)."""

import numpy as np
import pytest

from repro.ann.trace import IterationRecord, SearchTrace
from repro.baselines import CPUModel, DeepStoreModel, GPUModel, SmartSSDModel
from repro.baselines.common import DatasetProfile, WorkloadStats, cache_hit_count
from repro.core.config import HostConfig
from repro.core.placement import map_vertices
from repro.flash.timing import FlashTiming


def _traces(n_queries=8, iterations=6, per_iter=5, n_vertices=600, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for q in range(n_queries):
        t = SearchTrace(query_id=q)
        for _ in range(iterations):
            computed = tuple(
                int(v) for v in rng.choice(n_vertices, per_iter, replace=False)
            )
            t.iterations.append(
                IterationRecord(entry=int(rng.integers(n_vertices)),
                                computed=computed)
            )
        out.append(t)
    return out


def _profile(footprint=10 * 1024**2, name="sift-1b"):
    return DatasetProfile(
        name=name, num_vectors=600, dim=16, vector_bytes=64,
        footprint_bytes=footprint,
    )


@pytest.fixture()
def host():
    return HostConfig(dram_capacity_bytes=1024**2, vram_capacity_bytes=1024**2)


class TestWorkloadStats:
    def test_aggregates(self):
        stats = WorkloadStats.from_traces(_traces(4, 3, 5))
        assert stats.batch_size == 4
        assert stats.total_accesses == 4 * 3 * 5
        assert stats.total_iterations == 12
        assert stats.max_iterations == 3

    def test_empty(self):
        stats = WorkloadStats.from_traces([])
        assert stats.batch_size == 0

    def test_cache_hit_count(self):
        traces = _traces(2, 2, 4, n_vertices=10, seed=1)
        all_cached = cache_hit_count(traces, np.arange(10))
        assert all_cached == 2 * 2 * 4
        assert cache_hit_count(traces, None) == 0


class TestCPUModel:
    def test_out_of_memory_pays_io(self, host):
        cpu = CPUModel(timing=FlashTiming(), host=host)
        result = cpu.run_batch(_traces(), _profile(footprint=10 * 1024**2))
        assert result.component_busy_s["ssd_io_read"] > 0
        assert result.counters["pcie_bytes"] > 0

    def test_in_memory_pays_no_io(self, host):
        cpu = CPUModel(timing=FlashTiming(), host=host)
        result = cpu.run_batch(_traces(), _profile(footprint=1024))
        assert result.component_busy_s["ssd_io_read"] == 0.0

    def test_io_dominates_out_of_memory(self, host):
        """Fig. 1: SSD I/O read is the majority of CPU time."""
        cpu = CPUModel(timing=FlashTiming(), host=host)
        result = cpu.run_batch(
            _traces(n_queries=64, seed=2), _profile(), algorithm="hnsw"
        )
        frac = result.component_busy_s["ssd_io_read"] / result.sim_time_s
        assert frac > 0.5

    def test_cpu_t_everything_fits(self, host):
        cpu_t = CPUModel(timing=FlashTiming(), host=host, terabyte_dram=True)
        result = cpu_t.run_batch(_traces(), _profile(footprint=10**12))
        assert result.platform == "cpu-t"
        assert result.component_busy_s["ssd_io_read"] == 0.0

    def test_hot_cache_reduces_io(self, host):
        cpu = CPUModel(timing=FlashTiming(), host=host)
        traces = _traces(seed=3)
        without = cpu.run_batch(traces, _profile())
        with_cache = cpu.run_batch(
            traces, _profile(), cached_vertices=np.arange(300)
        )
        assert (
            with_cache.component_busy_s["ssd_io_read"]
            < without.component_busy_s["ssd_io_read"]
        )
        assert with_cache.counters["cache_hits"] > 0


class TestGPUModel:
    def test_out_of_memory_io(self, host):
        gpu = GPUModel(timing=FlashTiming(), host=host)
        result = gpu.run_batch(_traces(), _profile())
        assert result.component_busy_s["ssd_io_read"] > 0

    def test_in_memory_faster_than_cpu(self, host):
        # High-dimensional vectors: the CPU pays multi-cacheline
        # fetches while the GPU's gathers stay latency-bound.
        timing = FlashTiming()
        profile = DatasetProfile(
            name="glove-100", num_vectors=600, dim=128, vector_bytes=512,
            footprint_bytes=1024,
        )
        traces = _traces(n_queries=32, seed=4)
        gpu = GPUModel(timing=timing, host=host).run_batch(traces, profile)
        cpu = CPUModel(timing=timing, host=host).run_batch(traces, profile)
        assert gpu.sim_time_s < cpu.sim_time_s

    def test_kernel_launch_overhead_scales_with_rounds(self, host):
        gpu = GPUModel(timing=FlashTiming(), host=host)
        short = gpu.run_batch(_traces(iterations=2, seed=5), _profile(1024))
        long = gpu.run_batch(_traces(iterations=20, seed=5), _profile(1024))
        assert (
            long.component_busy_s["kernel_launch"]
            > short.component_busy_s["kernel_launch"]
        )


class TestSmartSSD:
    def test_runs_and_counts(self, tiny_config):
        model = SmartSSDModel(config=tiny_config)
        result = model.run_batch(_traces(), _profile())
        assert result.platform == "smartssd"
        assert result.counters["pcie_private_bytes"] > 0
        assert result.sim_time_s > 0

    def test_beats_cpu_on_big_data(self, host):
        # Needs the benchmark-scale device: the private P2P path only
        # pays off with real internal NAND parallelism.
        from repro.core.config import NDSearchConfig

        cfg = NDSearchConfig.scaled()
        traces = _traces(n_queries=256, seed=6)
        smart = SmartSSDModel(config=cfg).run_batch(traces, _profile())
        cpu = CPUModel(timing=cfg.timing, host=cfg.host).run_batch(
            traces, _profile()
        )
        assert smart.sim_time_s < cpu.sim_time_s


class TestDeepStore:
    @pytest.fixture()
    def placement(self, tiny_config):
        return map_vertices(600, tiny_config.geometry, 64)

    def test_level_validation(self, tiny_config, placement):
        with pytest.raises(ValueError):
            DeepStoreModel(config=tiny_config, placement=placement, level="die")

    def test_chip_level_beats_channel_level(self, tiny_config, placement):
        """The paper's inversion: DS-cp > DS-c for ANNS workloads."""
        traces = _traces(n_queries=32, seed=7)
        cp = DeepStoreModel(
            config=tiny_config, placement=placement, level="chip"
        ).run_batch(traces, _profile())
        c = DeepStoreModel(
            config=tiny_config, placement=placement, level="channel"
        ).run_batch(traces, _profile())
        assert cp.sim_time_s < c.sim_time_s
        assert cp.platform == "ds-cp"
        assert c.platform == "ds-c"

    def test_pages_leave_the_chip(self, tiny_config, placement):
        model = DeepStoreModel(config=tiny_config, placement=placement)
        result = model.run_batch(_traces(seed=8), _profile())
        # Every sensed page crosses a bus (internal_bytes = pages x size).
        assert result.counters["internal_bytes"] == (
            result.counters["page_reads"] * tiny_config.geometry.page_size
        )

    def test_dynamic_alloc_helps_ds_cp(self, tiny_config, placement):
        traces = []
        base = _traces(1, 5, 6, seed=9)[0]
        for q in range(16):
            t = SearchTrace(query_id=q)
            t.iterations = list(base.iterations)
            traces.append(t)
        on = DeepStoreModel(
            config=tiny_config, placement=placement, dynamic_alloc=True
        ).run_batch(traces, _profile())
        off = DeepStoreModel(
            config=tiny_config, placement=placement, dynamic_alloc=False
        ).run_batch(traces, _profile())
        assert on.counters["page_reads"] < off.counters["page_reads"]

    def test_empty_batch(self, tiny_config, placement):
        result = DeepStoreModel(config=tiny_config, placement=placement).run_batch(
            [], _profile()
        )
        assert result.sim_time_s == 0.0
