"""Tests for the HCNNG and TOGG implementations (Section VIII)."""

import numpy as np
import pytest

from repro.ann import (
    BruteForceIndex,
    HCNNGIndex,
    HCNNGParams,
    TOGGIndex,
    TOGGParams,
    recall_at_k,
)
from repro.ann.trace import TraceRecorder


@pytest.fixture(scope="module")
def hcnng(request):
    vectors = request.getfixturevalue("small_vectors")
    return HCNNGIndex(vectors, HCNNGParams(num_clusterings=6, leaf_size=24))


@pytest.fixture(scope="module")
def togg(request):
    vectors = request.getfixturevalue("small_vectors")
    return TOGGIndex(vectors, TOGGParams(knn=8))


class TestHCNNGConstruction:
    def test_mst_degree_cap_per_clustering(self, small_vectors):
        index = HCNNGIndex(
            small_vectors, HCNNGParams(num_clusterings=1, leaf_size=24,
                                       mst_max_degree=3)
        )
        degrees = np.array([len(a) for a in index.adjacency])
        assert degrees.max() <= 3

    def test_union_of_clusterings_grows_degree(self, small_vectors):
        one = HCNNGIndex(small_vectors, HCNNGParams(num_clusterings=1))
        many = HCNNGIndex(small_vectors, HCNNGParams(num_clusterings=6))
        assert many.base_graph().num_edges > one.base_graph().num_edges

    def test_graph_undirected(self, hcnng):
        for v, neighbors in enumerate(hcnng.adjacency):
            for u in neighbors:
                assert v in hcnng.adjacency[u]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HCNNGParams(num_clusterings=0)
        with pytest.raises(ValueError):
            HCNNGParams(mst_max_degree=1)


class TestHCNNGSearch:
    def test_recall(self, hcnng, small_vectors, small_queries):
        gt, _ = BruteForceIndex(small_vectors).search_batch(small_queries, 5)
        ids, _, _ = hcnng.search_batch(small_queries, 5, ef=48)
        assert recall_at_k(ids, gt) >= 0.85

    def test_entry_point_is_near_query(self, hcnng, small_vectors):
        entry = hcnng._entry_point(small_vectors[10])
        assert entry in hcnng.routing_ids.tolist()

    def test_trace_recording(self, hcnng, small_queries):
        rec = TraceRecorder(0)
        hcnng.search(small_queries[0], k=5, ef=24, recorder=rec)
        assert rec.finish().trace_length > 0


class TestTOGGConstruction:
    def test_knn_graph_symmetric(self, togg):
        for v, neighbors in enumerate(togg.adjacency):
            for u in neighbors:
                assert v in togg.adjacency[u]

    def test_connectivity_repair(self, togg):
        assert togg.base_graph().is_connected()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TOGGParams(knn=1)
        with pytest.raises(ValueError):
            TOGGParams(guided_ef=1)


class TestTOGGSearch:
    def test_recall(self, togg, small_vectors, small_queries):
        gt, _ = BruteForceIndex(small_vectors).search_batch(small_queries, 5)
        ids, _, _ = togg.search_batch(small_queries, 5, ef=48)
        assert recall_at_k(ids, gt) >= 0.85

    def test_guided_filter_keeps_forward_neighbors(self, togg, small_vectors):
        query = small_vectors[0] + 1.0
        filt = togg._guided_filter(query)
        neighbors = np.asarray(togg.adjacency[5], dtype=np.int64)
        kept = filt(5, neighbors)
        assert kept.size >= 1
        assert set(kept.tolist()) <= set(neighbors.tolist())

    def test_two_stage_trace_longer_than_guided(self, togg, small_queries):
        rec = TraceRecorder(0)
        togg.search(small_queries[1], k=5, ef=32, recorder=rec)
        trace = rec.finish()
        # Both stages record into the same trace: at least two entry
        # records (one per stage seed).
        assert trace.num_iterations >= 2
