"""Tests for configuration presets and scheduling flags."""

import math

import pytest

from repro.core.config import HostConfig, NDSearchConfig, SchedulingFlags


class TestSchedulingFlags:
    def test_bare(self):
        flags = SchedulingFlags.bare()
        assert not any(
            (flags.reorder, flags.multiplane, flags.dynamic_alloc,
             flags.speculative)
        )
        assert flags.label() == "bare"

    def test_label_composition(self):
        assert SchedulingFlags(True, True, False, False).label() == "re+mp"
        assert SchedulingFlags.all_enabled().label() == "re+mp+da+sp"

    def test_flags_hashable(self):
        assert len({SchedulingFlags.bare(), SchedulingFlags.all_enabled()}) == 2


class TestPresets:
    def test_paper_preset(self):
        cfg = NDSearchConfig.paper()
        assert cfg.num_lun_accelerators == 256
        assert cfg.geometry.capacity_bytes == 512 * 1024**3
        assert cfg.dram_bytes == 4 * 1024**3
        # Paper: batch 4096 is where sub-batching kicks in (Fig. 19).
        assert cfg.max_batch_capacity == 4096
        assert cfg.sub_batches(4096) == 1
        assert cfg.sub_batches(8192) == 2

    def test_paper_internal_bandwidth(self):
        # Fig. 2(b): 819.2 GB/s when all page buffers stream at once.
        assert NDSearchConfig.paper().internal_bandwidth == pytest.approx(819.2e9)

    def test_scaled_preserves_bandwidth_imbalance(self):
        paper = NDSearchConfig.paper()
        scaled = NDSearchConfig.scaled()
        paper_ratio = paper.internal_bandwidth / paper.timing.pcie_host_bw
        scaled_ratio = scaled.internal_bandwidth / scaled.timing.pcie_host_bw
        # Same order of magnitude of internal-vs-PCIe headroom.
        assert 0.2 < scaled_ratio / paper_ratio < 1.1

    def test_with_flags_is_pure(self):
        cfg = NDSearchConfig.scaled()
        other = cfg.with_flags(SchedulingFlags.bare())
        assert cfg.flags.reorder
        assert not other.flags.reorder
        assert other.geometry is cfg.geometry

    def test_sub_batches_edge_cases(self):
        cfg = NDSearchConfig.scaled()
        assert cfg.sub_batches(0) == 1
        assert cfg.sub_batches(1) == 1


class TestHostConfig:
    def test_pcie_utilization_saturates(self):
        host = HostConfig(dram_capacity_bytes=1, vram_capacity_bytes=1)
        u_small = host.pcie_utilization(64)
        u_big = host.pcie_utilization(2048)
        assert u_small < u_big <= host.pcie_util_max

    def test_fig2a_saturation_point(self):
        """Fig. 2(a): utilisation saturates to ~83% past batch 1024."""
        host = HostConfig(dram_capacity_bytes=1, vram_capacity_bytes=1)
        assert host.pcie_utilization(1024) > 0.95 * host.pcie_util_max
        assert host.pcie_utilization(2048) == pytest.approx(
            host.pcie_util_max, rel=0.01
        )

    def test_zero_batch(self):
        host = HostConfig(dram_capacity_bytes=1, vram_capacity_bytes=1)
        assert host.pcie_utilization(0) == 0.0
