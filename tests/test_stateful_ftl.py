"""Stateful property test: FTL refresh + LUNCSR mirroring.

A hypothesis RuleBasedStateMachine drives arbitrary interleavings of
block refreshes and address lookups, checking after every step that
(i) the FTL mapping remains a per-plane bijection and (ii) LUNCSR's
BLK array always agrees with a read of the vertex through the
functional SSD — i.e. the Allocator's translation-free address
generation can never go stale.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.ann.graph import ProximityGraph
from repro.core.luncsr import LUNCSR
from repro.core.placement import map_vertices
from repro.flash.geometry import SSDGeometry
from repro.flash.ssd import SSD

GEOMETRY = SSDGeometry(
    channels=2,
    chips_per_channel=1,
    luns_per_chip=2,
    planes_per_lun=2,
    blocks_per_plane=6,
    pages_per_block=4,
    page_size=256,
)
N_VERTICES = 48
DIM = 8


class FTLLuncsrMachine(RuleBasedStateMachine):
    @initialize()
    def build_device(self):
        rng = np.random.default_rng(7)
        vectors = rng.normal(size=(N_VERTICES, DIM)).astype(np.float32)
        adjacency = [[(v + 1) % N_VERTICES] for v in range(N_VERTICES)]
        self.graph = ProximityGraph.from_adjacency(vectors, adjacency)
        self.ssd = SSD(geometry=GEOMETRY)
        vector_bytes = DIM * 4
        placement = map_vertices(N_VERTICES, GEOMETRY, vector_bytes)
        self.luncsr = LUNCSR.build(self.graph, placement, vector_bytes)
        self.luncsr.attach_to_ftl(self.ssd.ftl)
        # Program every vertex through the logical path.
        from repro.flash.geometry import PhysicalAddress

        pages: dict[tuple, np.ndarray] = {}
        for v in range(N_VERTICES):
            key = placement.page_key(v)
            buf = pages.setdefault(key, np.zeros(GEOMETRY.page_size, np.uint8))
            start = int(placement.slot[v]) * vector_bytes
            buf[start : start + vector_bytes] = np.frombuffer(
                vectors[v].tobytes(), dtype=np.uint8
            )
        for (lun, plane, block, page), buf in pages.items():
            self.ssd.program(
                PhysicalAddress(lun=lun, plane=plane, block=block, page=page),
                buf,
            )

    @rule(
        lun=st.integers(min_value=0, max_value=GEOMETRY.total_luns - 1),
        plane=st.integers(min_value=0, max_value=GEOMETRY.planes_per_lun - 1),
        block=st.integers(min_value=0, max_value=3),
    )
    def refresh(self, lun, plane, block):
        self.ssd.refresh(lun, plane, block)

    @rule(vertex=st.integers(min_value=0, max_value=N_VERTICES - 1))
    def read_vertex_via_luncsr(self, vertex):
        """The Allocator path: physical address from LUNCSR, direct
        read from the plane, no FTL translation."""
        address = self.luncsr.physical_address(vertex)
        plane = (
            self.ssd.chips[GEOMETRY.chip_of_lun(address.lun)]
            .lun(address.lun)
            .planes[address.plane]
        )
        plane.load_page(address.block, address.page)
        raw = plane.read_buffer(address.byte, DIM * 4)
        assert np.array_equal(
            raw.view(np.float32), self.graph.vectors[vertex]
        ), f"vertex {vertex} stale after refreshes"

    @invariant()
    def ftl_consistent(self):
        if hasattr(self, "ssd"):
            self.ssd.ftl.check_consistency()


TestFTLLuncsrStateful = FTLLuncsrMachine.TestCase
TestFTLLuncsrStateful.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
