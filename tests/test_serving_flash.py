"""Stateful flash under serving (``ServingConfig.flash``).

The online stack routed through a live FTL: cluster reads translate
through the mapping and accumulate read disturb, crossing the threshold
schedules a :class:`~repro.sim.events.FlashMaintenance` refresh whose
GC pause is booked on the device like a migration, rebalance data
movement charges program/erase through the FTL, and LDPC retry storms
jitter individual reads.  All of it is opt-in: ``flash=None`` (the
default) is the parity baseline pinned in ``test_serving_parity.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import NDSearchConfig
from repro.data.synthetic import clustered_gaussian, split_queries
from repro.obs import SpanTracer
from repro.serving import (
    BatchPolicy,
    FlashConfig,
    PoissonArrivals,
    QueryStream,
    RebalancePolicy,
    ServingConfig,
    ServingFrontend,
    build_router,
)
from repro.serving.sharding import PARTITIONED

CORPUS, DIM, POOL, REQUESTS, K = 800, 16, 128, 400, 10

#: Disturb threshold scaled down so the test's read volume trips
#: refreshes the way production volumes trip the real threshold.
FLASH = FlashConfig(read_disturb_threshold=200, ecc_hard_failure_prob=0.05)


@pytest.fixture(scope="module")
def corpus_and_pool():
    vectors = clustered_gaussian(CORPUS, DIM, seed=31)
    pool = split_queries(vectors, POOL, seed=32)
    return vectors, pool


def _run(vectors, pool, *, flash, tracer=None, rebalance=None, zipf=1.2):
    # The bench_serving --flash cell: a partitioned pool under skewed
    # Zipfian load with nprobe=1, so the hot clusters' blocks see
    # disproportionate disturb.  A fresh router per run — flash wear
    # is mutable state and rebalance mutates placement.
    router = build_router(
        vectors, num_shards=4, config=NDSearchConfig.scaled(),
        mode=PARTITIONED, seed=35, clusters_per_shard=2,
    )
    stream = QueryStream(
        PoissonArrivals(16000.0),
        pool_size=POOL,
        n_requests=REQUESTS,
        k=K,
        zipf_exponent=zipf,
        seed=33,
        slo_s=4e-3,
    )
    frontend = ServingFrontend(
        router,
        ServingConfig(
            policy=BatchPolicy(max_batch_size=16, max_wait_s=2e-3),
            cache_capacity=0,
            coalesce=False,
            nprobe=1,
            rebalance=rebalance,
            flash=flash,
        ),
        tracer=tracer,
    )
    report = frontend.run(stream.generate(), pool)
    return report, frontend


class TestDeterminism:
    def test_same_seed_same_config_byte_identical(self, corpus_and_pool):
        """Satellite 1: flash-on runs are exactly reproducible — the
        full report (flash wear summary included) serializes to the
        same bytes across two independent runs."""
        vectors, pool = corpus_and_pool
        payloads = []
        for _ in range(2):
            report, _ = _run(vectors, pool, flash=FLASH)
            payloads.append(
                json.dumps(report.to_dict(), sort_keys=True).encode()
            )
        assert payloads[0] == payloads[1]


class TestGCPausesShapeTail:
    def test_refreshes_fire_and_inflate_p99(self, corpus_and_pool):
        vectors, pool = corpus_and_pool
        ideal, _ = _run(vectors, pool, flash=None)
        stateful, _ = _run(vectors, pool, flash=FLASH)
        assert ideal.flash is None
        assert stateful.flash is not None
        assert stateful.flash["refreshes"] > 0
        assert stateful.flash["ecc_soft_decodes"] > 0
        # Same stream, same placement: the only difference is the FTL
        # charging for its reads — and the tail pays for it.
        assert stateful.latency_p99_s > ideal.latency_p99_s

    def test_pauses_are_booked_device_time(self, corpus_and_pool):
        """Satellite 3: a refresh is not a latency fudge — it occupies
        the device's entry-stage FIFO (visible in ``stage_busy``), so
        queued batches drain later."""
        vectors, pool = corpus_and_pool
        _, plain = _run(vectors, pool, flash=None)
        _, flashed = _run(vectors, pool, flash=FLASH)
        plain_busy = sum(
            sum(d.stage_busy.values()) for d in plain.devices
        )
        flash_busy = sum(
            sum(d.stage_busy.values()) for d in flashed.devices
        )
        assert flash_busy > plain_busy

    def test_wear_skew_follows_popularity(self, corpus_and_pool):
        """Zipfian-hot clusters wear their blocks: the most-read
        cluster accumulates at least as many erases as any other and
        strictly more than the least-read one."""
        vectors, pool = corpus_and_pool
        report, _ = _run(vectors, pool, flash=FLASH)
        reads = report.flash["cluster_page_reads"]
        erases = report.flash["cluster_erases"]
        hot = max(reads, key=reads.get)
        cold = min(reads, key=reads.get)
        assert reads[hot] > reads[cold]
        assert erases.get(hot, 0) > erases.get(cold, 0), (reads, erases)
        # Relocation writes amplify beyond the host's own programs.
        assert report.flash["write_amplification"] > 1.0

    def test_migration_charges_program_erase(self, corpus_and_pool):
        """Rebalance data movement is honest about write amplification:
        migrating a cluster programs its pages on the destination FTL
        and erases its blocks on the source, so nand writes grow beyond
        the no-migration run's."""
        vectors, pool = corpus_and_pool
        static, _ = _run(vectors, pool, flash=FLASH)
        moved, _ = _run(
            vectors, pool, flash=FLASH,
            rebalance=RebalancePolicy(
                interval_s=2e-3, skew_threshold=0.25, migration_gbps=1.0
            ),
        )
        assert moved.rebalance_events, "skew never triggered a migration"
        assert (
            moved.flash["nand_pages_written"]
            > static.flash["nand_pages_written"]
        )
        assert moved.flash["total_erases"] > static.flash["total_erases"]


class TestObservability:
    def test_trace_carries_flash_lanes(self, corpus_and_pool):
        """Refreshes and ECC retries render as their own trace spans
        (distinct from query stages and migrations), and the kernel
        telemetry counts the FlashMaintenance events."""
        vectors, pool = corpus_and_pool
        tracer = SpanTracer()
        report, _ = _run(vectors, pool, flash=FLASH, tracer=tracer)
        payload = tracer.to_json()
        names = {e.get("name") for e in payload["traceEvents"]}
        assert "flash refresh" in names
        assert "ecc retry" in names
        assert report.counters["loop_events_FlashMaintenance"] > 0
        assert (
            report.counters["loop_events_FlashMaintenance"]
            <= report.flash["refreshes"]
        )
