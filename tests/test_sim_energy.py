"""Unit tests for the power/energy model (paper Table I, Fig. 20)."""

import pytest

from repro.sim.energy import (
    EnergyModel,
    FPGA_SORT_POWER_W,
    NDSEARCH_TOTAL_POWER_W,
    PCIE_POWER_BUDGET_W,
    PLATFORM_POWER_W,
    SEARSSD_LOGIC_POWER_W,
    SEARSSD_TABLE_I,
)
from repro.sim.stats import SimResult


def _result(time_s=1.0, **busy):
    return SimResult("ndsearch", "hnsw", "sift-1b", 100, time_s,
                     component_busy_s=busy)


class TestTableI:
    def test_total_logic_power_matches_paper(self):
        assert SEARSSD_LOGIC_POWER_W == pytest.approx(18.82)

    def test_total_with_fpga_matches_paper(self):
        assert SEARSSD_LOGIC_POWER_W + FPGA_SORT_POWER_W == pytest.approx(
            NDSEARCH_TOTAL_POWER_W
        )

    def test_within_pcie_power_budget(self):
        assert NDSEARCH_TOTAL_POWER_W < PCIE_POWER_BUDGET_W

    def test_component_counts(self):
        by_name = {c.name: c for c in SEARSSD_TABLE_I}
        assert by_name["mac_group"].count == 512
        assert by_name["query_queue"].count == 256
        assert by_name["ecc_decoder"].count == 1024


class TestEnergyModel:
    def test_flat_model_charges_full_power(self):
        r = EnergyModel.flat(100.0).attach(_result(2.0))
        assert r.energy_j == pytest.approx(200.0)
        assert r.power_w == pytest.approx(100.0)

    def test_ndsearch_power_bounded_by_total(self):
        # Fully busy everything cannot exceed the Table I total.
        busy = {k: 10.0 for k in EnergyModel.ndsearch().dynamic_power_w}
        r = EnergyModel.ndsearch().attach(_result(1.0, **busy))
        assert r.power_w <= NDSEARCH_TOTAL_POWER_W + 1e-9

    def test_ndsearch_idle_draws_static_only(self):
        model = EnergyModel.ndsearch()
        r = model.attach(_result(1.0))
        assert r.power_w == pytest.approx(model.static_power_w)

    def test_dynamic_busy_raises_energy(self):
        model = EnergyModel.ndsearch()
        idle = model.attach(_result(1.0))
        active = model.attach(_result(1.0, sin_macs_busy=0.5))
        assert active.energy_j > idle.energy_j

    def test_for_platform_covers_all_platforms(self):
        for platform in PLATFORM_POWER_W:
            model = EnergyModel.for_platform(platform)
            assert model.static_power_w > 0

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel.for_platform("abacus")

    def test_ndsearch_cheaper_than_cpu(self):
        assert NDSEARCH_TOTAL_POWER_W < PLATFORM_POWER_W["cpu"]
        assert NDSEARCH_TOTAL_POWER_W < PLATFORM_POWER_W["gpu"]
