"""Unit tests for the shared beam-search kernel."""

import numpy as np
import pytest

from repro.ann.bruteforce import BruteForceIndex
from repro.ann.distance import DistanceMetric
from repro.ann.search import greedy_beam_search, top_k_from_results
from repro.ann.trace import TraceRecorder


def _line_world(n=32, dim=4):
    """Points on a line; neighbors are adjacent indices."""
    vectors = np.arange(n, dtype=np.float32)[:, None].repeat(dim, axis=1)
    adjacency = [
        np.asarray([v - 1, v + 1][: (2 if 0 < v < n - 1 else 1)])
        if v not in (0, n - 1)
        else np.asarray([1] if v == 0 else [n - 2])
        for v in range(n)
    ]
    return vectors, lambda v: adjacency[v]


class TestBeamSearch:
    def test_finds_nearest_on_line(self):
        vectors, neighbors = _line_world()
        query = np.full(4, 20.2, dtype=np.float32)
        results = greedy_beam_search(
            vectors, neighbors, query, [0], ef=4, metric=DistanceMetric.EUCLIDEAN
        )
        assert results[0][1] == 20

    def test_results_sorted_ascending(self, small_vectors, small_graph):
        query = small_vectors[5]
        results = greedy_beam_search(
            small_vectors,
            small_graph.neighbors,
            query,
            [small_graph.entry_point],
            ef=16,
            metric=DistanceMetric.EUCLIDEAN,
        )
        dists = [d for d, _ in results]
        assert dists == sorted(dists)
        assert len(results) <= 16

    def test_matches_bruteforce_on_connected_graph(self, small_vectors, small_graph):
        bf = BruteForceIndex(small_vectors)
        hits = 0
        for qi in range(10):
            query = small_vectors[qi * 7]
            results = greedy_beam_search(
                small_vectors,
                small_graph.neighbors,
                query,
                [small_graph.entry_point],
                ef=32,
                metric=DistanceMetric.EUCLIDEAN,
            )
            ids, _ = top_k_from_results(results, 1)
            exact, _ = bf.search(query, 1)
            hits += int(ids[0] == exact[0])
        assert hits >= 8  # greedy search nearly always finds the true NN

    def test_recorder_sees_every_expansion(self, small_vectors, small_graph):
        rec = TraceRecorder(0)
        query = small_vectors[0]
        greedy_beam_search(
            small_vectors,
            small_graph.neighbors,
            query,
            [small_graph.entry_point],
            ef=8,
            metric=DistanceMetric.EUCLIDEAN,
            recorder=rec,
        )
        trace = rec.finish()
        assert trace.num_iterations >= 1
        # Every computed vertex appears exactly once across iterations.
        visited = trace.visited_vertices
        assert len(visited) == len(set(visited))

    def test_neighbor_filter_applied(self):
        vectors, neighbors = _line_world()
        query = np.full(4, 31.0, dtype=np.float32)
        # Filter forbids moving right: search cannot progress past entry.
        results = greedy_beam_search(
            vectors,
            neighbors,
            query,
            [5],
            ef=4,
            metric=DistanceMetric.EUCLIDEAN,
            neighbor_filter=lambda v, ids: ids[ids < v],
        )
        assert all(v <= 5 for _, v in results)

    def test_max_iterations_cap(self, small_vectors, small_graph):
        rec = TraceRecorder(0)
        greedy_beam_search(
            small_vectors,
            small_graph.neighbors,
            small_vectors[3],
            [small_graph.entry_point],
            ef=16,
            metric=DistanceMetric.EUCLIDEAN,
            recorder=rec,
            max_iterations=3,
        )
        # entry record + at most 3 expansions
        assert rec.finish().num_iterations <= 4

    def test_invalid_arguments(self, small_vectors, small_graph):
        with pytest.raises(ValueError):
            greedy_beam_search(
                small_vectors, small_graph.neighbors, small_vectors[0], [0],
                ef=0, metric=DistanceMetric.EUCLIDEAN,
            )
        with pytest.raises(ValueError):
            greedy_beam_search(
                small_vectors, small_graph.neighbors, small_vectors[0], [],
                ef=4, metric=DistanceMetric.EUCLIDEAN,
            )

    def test_multiple_entry_points(self, small_vectors, small_graph):
        results = greedy_beam_search(
            small_vectors,
            small_graph.neighbors,
            small_vectors[9],
            [0, 1, 2],
            ef=8,
            metric=DistanceMetric.EUCLIDEAN,
        )
        assert len(results) >= 3


class TestTopK:
    def test_top_k_split(self):
        results = [(0.1, 4), (0.2, 7), (0.3, 1)]
        ids, dists = top_k_from_results(results, 2)
        assert ids.tolist() == [4, 7]
        assert dists.tolist() == [0.1, 0.2]

    def test_top_k_larger_than_results(self):
        ids, dists = top_k_from_results([(0.5, 2)], 5)
        assert ids.tolist() == [2]
