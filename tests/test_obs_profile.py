"""Run profiler and the calibration-scaled perf regression gate."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    RunProfiler,
    calibrate_events_per_sec,
    check_regression,
    peak_rss_bytes,
)


def _payload(configs, calibration=1_000_000.0):
    return {
        "schema": 1,
        "bench": "serving",
        "calibration_eps": calibration,
        "configs": {
            name: {
                "wall_s": 1.0,
                "events": int(eps),
                "events_per_sec": eps,
                "peak_rss_bytes": 1,
            }
            for name, eps in configs.items()
        },
    }


class TestProbes:
    def test_peak_rss_is_positive_and_monotone(self):
        first = peak_rss_bytes()
        assert first > 0
        blob = bytearray(8 * 1024 * 1024)
        blob[::4096] = b"x" * len(blob[::4096])
        assert peak_rss_bytes() >= first

    def test_calibration_is_positive(self):
        assert calibrate_events_per_sec(n_events=2000) > 0


class TestRunProfiler:
    def test_measure_records_wall_and_events(self):
        profiler = RunProfiler()
        with profiler.measure("cfg") as probe:
            probe.events = 500
        (record,) = profiler.records
        assert record.name == "cfg"
        assert record.events == 500
        assert record.wall_s > 0
        assert record.events_per_sec == pytest.approx(500 / record.wall_s)
        assert record.peak_rss_bytes > 0

    def test_to_json_payload(self):
        profiler = RunProfiler()
        with profiler.measure("a") as probe:
            probe.events = 10
        with profiler.measure("b") as probe:
            probe.events = 20
        payload = profiler.to_json(calibration_eps=123.0)
        assert payload["schema"] == 1
        assert payload["bench"] == "serving"
        assert payload["calibration_eps"] == 123.0
        assert set(payload["configs"]) == {"a", "b"}
        entry = payload["configs"]["a"]
        assert set(entry) == {
            "wall_s", "events", "events_per_sec", "peak_rss_bytes"
        }
        json.dumps(payload)  # JSON-safe end to end

    def test_to_json_self_calibrates(self):
        payload = RunProfiler().to_json()
        assert payload["calibration_eps"] > 0


class TestCheckRegression:
    def test_within_threshold_passes(self):
        baseline = _payload({"a": 1000.0})
        current = _payload({"a": 800.0})  # -20% < 30% threshold
        rows, failures = check_regression(baseline, current)
        assert failures == []
        (row,) = rows
        assert row["status"] == "ok"
        assert row["ratio"] == pytest.approx(0.8)

    def test_regression_fails(self):
        baseline = _payload({"a": 1000.0})
        current = _payload({"a": 500.0})  # -50%
        rows, failures = check_regression(baseline, current)
        assert rows[0]["status"] == "regressed"
        assert len(failures) == 1
        assert "a" in failures[0]

    def test_calibration_rescales_the_baseline(self):
        """A uniformly slower host is not a regression."""
        baseline = _payload({"a": 1000.0}, calibration=2_000_000.0)
        # Host runs at half the baseline machine's speed; the config
        # slowed down proportionally.  Scaled expectation: 500 ev/s.
        current = _payload({"a": 500.0}, calibration=1_000_000.0)
        rows, failures = check_regression(baseline, current)
        assert failures == []
        assert rows[0]["expected_eps"] == pytest.approx(500.0)
        assert rows[0]["ratio"] == pytest.approx(1.0)

    def test_real_slowdown_fails_even_after_scaling(self):
        baseline = _payload({"a": 1000.0}, calibration=2_000_000.0)
        current = _payload({"a": 200.0}, calibration=1_000_000.0)
        _, failures = check_regression(baseline, current)
        assert failures  # 200 vs scaled 500 => ratio 0.4

    def test_threshold_is_configurable(self):
        baseline = _payload({"a": 1000.0})
        current = _payload({"a": 800.0})
        _, failures = check_regression(baseline, current, threshold=0.10)
        assert failures

    def test_new_and_removed_configs_informational(self):
        baseline = _payload({"a": 1000.0, "old": 1.0})
        current = _payload({"a": 1000.0, "fresh": 1.0})
        rows, failures = check_regression(baseline, current)
        assert failures == []
        status = {row["name"]: row["status"] for row in rows}
        assert status == {"a": "ok", "old": "removed", "fresh": "new"}

    def test_missing_calibration_defaults_to_unscaled(self):
        baseline = _payload({"a": 1000.0})
        del baseline["calibration_eps"]
        current = _payload({"a": 900.0})
        rows, failures = check_regression(baseline, current)
        assert failures == []
        assert rows[0]["expected_eps"] == pytest.approx(1000.0)


class TestGateScripts:
    """The CI entry points around the library gate."""

    def test_check_bench_regression_cli(self, tmp_path):
        import importlib.util
        from pathlib import Path

        script = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "check_bench_regression.py"
        )
        spec = importlib.util.spec_from_file_location("check_bench", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(_payload({"a": 1000.0})))
        cur.write_text(json.dumps(_payload({"a": 900.0})))
        assert module.main(
            ["--baseline", str(base), "--current", str(cur)]
        ) == 0
        cur.write_text(json.dumps(_payload({"a": 100.0})))
        assert module.main(
            ["--baseline", str(base), "--current", str(cur)]
        ) == 1

    def test_check_bench_regression_skips_configs_not_in_baseline(
        self, tmp_path, capsys
    ):
        # A config measured by the fresh run but absent from the
        # committed baseline must be skipped with an explicit note,
        # never gated (it has no trajectory yet).
        import importlib.util
        from pathlib import Path

        script = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "check_bench_regression.py"
        )
        spec = importlib.util.spec_from_file_location("check_bench2", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(_payload({"a": 1000.0})))
        cur.write_text(
            json.dumps(_payload({"a": 1000.0, "twin-whatif": 50.0}))
        )
        assert module.main(
            ["--baseline", str(base), "--current", str(cur)]
        ) == 0
        out = capsys.readouterr().out
        assert "twin-whatif" in out
        assert "skipped: not in baseline" in out
        assert "1 new config(s) skipped" in out

    def test_committed_baseline_is_well_formed(self):
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "BENCH_serving.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1
        assert payload["calibration_eps"] > 0
        assert payload["configs"], "trajectory has no configs"
        for entry in payload["configs"].values():
            assert entry["wall_s"] > 0
            assert entry["events"] > 0
            assert entry["events_per_sec"] > 0
            assert entry["peak_rss_bytes"] > 0
