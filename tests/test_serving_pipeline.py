"""Pipelined shard devices and request coalescing."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.config import NDSearchConfig
from repro.serving import (
    BatchPolicy,
    MMPPArrivals,
    PoissonArrivals,
    QueryStream,
    ServingConfig,
    ServingFrontend,
    ShardDevice,
    build_router,
)
from repro.serving.request import COALESCED, COMPLETED, SHED, Request
from repro.sim.stats import SimResult, serial_timeline


def _result(stages, batch=8):
    """A SimResult with the given (stage, resource, duration) chain."""
    timeline = serial_timeline(stages)
    total = timeline[-1].end if timeline else 0.0
    return SimResult("x", "hnsw", "synthetic", batch, total, timeline=timeline)


class TestShardDevice:
    def test_unloaded_latency_matches_either_mode(self):
        result = _result([("in", "a", 1.0), ("work", "b", 3.0), ("out", "c", 1.0)])
        for pipelined in (False, True):
            device = ShardDevice(pipelined=pipelined)
            start, completion = device.serve(result, at=2.0)
            assert start == 2.0
            assert completion == pytest.approx(7.0)

    def test_blocking_serializes_whole_batches(self):
        result = _result([("in", "a", 1.0), ("work", "b", 3.0)])
        device = ShardDevice(pipelined=False)
        device.serve(result, at=0.0)
        start, completion = device.serve(result, at=0.0)
        assert start == 4.0 and completion == 8.0

    def test_pipelined_overlaps_consecutive_batches(self):
        """Batch 2 enters stage 'a' while batch 1 occupies stage 'b'."""
        result = _result([("in", "a", 1.0), ("work", "b", 3.0), ("out", "c", 1.0)])
        device = ShardDevice(pipelined=True)
        _, done1 = device.serve(result, at=0.0)
        start2, done2 = device.serve(result, at=0.0)
        assert done1 == pytest.approx(5.0)
        # Entry stage frees at t=1, bottleneck 'b' frees at t=4:
        # batch 2 runs a[1,2] b[4,7] c[7,8] instead of [5,10] blocking.
        assert start2 == pytest.approx(1.0)
        assert done2 == pytest.approx(8.0)
        blocking = ShardDevice(pipelined=False)
        blocking.serve(result, at=0.0)
        _, blocking_done2 = blocking.serve(result, at=0.0)
        assert done2 < blocking_done2

    def test_pipelined_respects_per_resource_fifo(self):
        """The bottleneck stage never runs two batches at once."""
        result = _result([("in", "a", 1.0), ("work", "b", 3.0)])
        device = ShardDevice(pipelined=True)
        ends = [device.serve(result, at=0.0)[1] for _ in range(4)]
        # Steady state is bottleneck-limited: one 'work' every 3 s.
        assert np.allclose(np.diff(ends), 3.0)

    def test_earliest_start_tracks_entry_stage(self):
        result = _result([("in", "a", 1.0), ("work", "b", 3.0)])
        pipelined = ShardDevice(pipelined=True)
        blocking = ShardDevice(pipelined=False)
        pipelined.serve(result, at=0.0)
        blocking.serve(result, at=0.0)
        assert pipelined.earliest_start(0.0) == pytest.approx(1.0)
        assert blocking.earliest_start(0.0) == pytest.approx(4.0)

    def test_opaque_result_behaves_like_blocking(self):
        result = SimResult("x", "hnsw", "synthetic", 8, 2.0)  # no timeline
        device = ShardDevice(pipelined=True)
        device.serve(result, at=0.0)
        start2, done2 = device.serve(result, at=0.0)
        assert (start2, done2) == (2.0, 4.0)

    def test_entry_resource_tracks_latest_chain(self):
        """Regression: the entry stage must follow the current chain,
        not stay pinned to the first-ever batch's first stage.

        A device that served chains entering via 'a' and then via 'b'
        must answer earliest_start from 'b''s FIFO (the latest chain
        shape) — the stale pin reported 'a''s free time, which here is
        far earlier than the actual entry backlog."""
        chain_a = _result([("in", "a", 1.0), ("work", "b", 3.0)])
        chain_b = _result([("load", "b", 4.0), ("out", "c", 1.0)])
        device = ShardDevice(pipelined=True)
        device.serve(chain_a, at=0.0)   # a free at 1, b free at 4
        device.serve(chain_b, at=0.0)   # b free at 8, c free at 9
        # The next batch (same shape as the latest chain) enters via
        # 'b', which is busy until t=8; the stale code reported t=1.
        assert device.earliest_start(0.0) == pytest.approx(8.0)
        # A caller that knows its candidate chain can ask explicitly.
        assert device.earliest_start(0.0, entry_resource="a") == pytest.approx(1.0)
        # And the reported start of an actual booking agrees.
        start3, _ = device.serve(chain_b, at=0.0)
        assert start3 == pytest.approx(8.0)

    def test_predict_is_a_non_mutating_dry_run(self):
        """predict() must agree with the serve() that follows it and
        leave the device state untouched in between."""
        result = _result([("in", "a", 1.0), ("work", "b", 3.0), ("out", "c", 1.0)])
        chain = result.pipeline_stages()
        for pipelined in (True, False):
            device = ShardDevice(pipelined=pipelined)
            device.serve(result, at=0.0)
            predicted = device.predict(chain, 0.5)
            again = device.predict(chain, 0.5)
            assert predicted == again  # no state was booked
            assert device.batches_served == 1
            booked = device.serve(result, at=0.5)
            assert booked == pytest.approx(predicted)

    def test_predict_on_a_never_dispatched_device(self):
        """An empty device has no FIFO backlog: the prediction starts
        at the ask time and completes after the unloaded makespan, in
        both modes — and books nothing."""
        chain = [("a", 1.0), ("b", 3.0), ("c", 0.5)]
        for pipelined in (True, False):
            device = ShardDevice(pipelined=pipelined)
            start, completion = device.predict(chain, 2.0)
            assert start == 2.0
            assert completion == pytest.approx(6.5)
            assert device.busy_s == 0.0
            assert device.batches_served == 0
            assert device.drain_at == 0.0
        with pytest.raises(ValueError):
            ShardDevice().predict([], 0.0)

    def test_predict_steady_state_allocates_nothing(self):
        """The slo policy dry-runs predict() on every queue event; in
        the steady state it must not allocate (the per-stage scratch
        dict is persistent and cleared, never rebuilt).  Transient
        floats (stage arithmetic, the returned tuple) are freed within
        the call; what is asserted is zero *net* allocations
        attributable to the device module."""
        import tracemalloc

        import repro.serving.device as device_module

        result = _result(
            [("in", "a", 1.0), ("work", "b", 3.0), ("out", "c", 1.0)]
        )
        chain = result.pipeline_stages()
        device = ShardDevice(pipelined=True)
        device.serve(result, at=0.0)
        for _ in range(64):  # warm the scratch, float caches, etc.
            device.predict(chain, 0.5)
        only_device = tracemalloc.Filter(True, device_module.__file__)
        tracemalloc.start(5)
        try:
            before = tracemalloc.take_snapshot().filter_traces([only_device])
            for _ in range(256):
                device.predict(chain, 0.5)
            after = tracemalloc.take_snapshot().filter_traces([only_device])
        finally:
            tracemalloc.stop()
        growth = [
            stat for stat in after.compare_to(before, "lineno")
            if stat.size_diff > 0
        ]
        assert not growth, (
            f"predict() accumulated allocations over 256 calls: {growth}"
        )

    def test_book_contends_with_batches(self):
        """Non-query work (a migration's data movement) occupies the
        entry-stage FIFO: a batch closed during the booking waits."""
        result = _result([("in", "a", 1.0), ("out", "b", 3.0)])
        device = ShardDevice(pipelined=True)
        device.serve(result, at=0.0)        # entry "a" free at 1.0
        start, end = device.book(0.0, 5.0)  # defaults to entry stage "a"
        assert (start, end) == (1.0, 6.0)
        assert device.drain_at >= 6.0
        start2, _ = device.serve(result, at=2.0)
        assert start2 == 6.0  # queued behind the migration read
        assert device.batches_served == 2  # book() is not a batch
        # A fresh device books on the dedicated migration stage and
        # still counts as busy occupancy.
        cold = ShardDevice(pipelined=True)
        cold.book(1.0, 2.0)
        assert cold.busy_s == 2.0
        assert cold.stage_busy == {"migration": 2.0}
        # Blocking devices serialize the movement with whole batches.
        blocking = ShardDevice(pipelined=False)
        blocking.serve(result, at=0.0)      # drains at 4.0
        assert blocking.book(0.0, 5.0) == (4.0, 9.0)
        with pytest.raises(ValueError):
            blocking.book(0.0, -1.0)


def _run_stream(router, *, pipelined, coalesce=False, rate=20000.0,
                n=200, zipf=0.0, pool=None, seed=33):
    stream = QueryStream(
        MMPPArrivals(rate), pool_size=pool.shape[0], n_requests=n, k=5,
        zipf_exponent=zipf, seed=seed,
    )
    frontend = ServingFrontend(
        router,
        ServingConfig(
            policy=BatchPolicy(max_batch_size=16, max_wait_s=2e-3),
            cache_capacity=0,
            pipelined=pipelined,
            coalesce=coalesce,
        ),
    )
    return frontend.run(stream.generate(), pool)


class TestPipelinedServing:
    @pytest.fixture(scope="class")
    def pool(self, small_vectors):
        return np.ascontiguousarray(small_vectors[:32] + 0.02)

    @pytest.mark.parametrize("platform", ["ndsearch", "cpu", "smartssd"])
    def test_pipelining_never_hurts_throughput(
        self, small_vectors, pool, platform
    ):
        """Same bursty stream: pipelined QPS >= blocking QPS."""
        config = NDSearchConfig.scaled()
        router = build_router(
            small_vectors, num_shards=2, config=config, platform=platform
        )
        blocking = _run_stream(router, pipelined=False, pool=pool)
        pipelined = _run_stream(router, pipelined=True, pool=pool)
        assert pipelined.served == blocking.served
        assert pipelined.qps >= blocking.qps * (1 - 1e-9)
        assert pipelined.latency_p99_s <= blocking.latency_p99_s * (1 + 1e-9)

    def test_pipelining_wins_on_io_bound_platform(self, small_vectors, pool):
        """A spilling CPU host overlaps batch N+1's SSD reads with batch
        N's in-core work: strictly higher sustained QPS under bursts."""
        config = NDSearchConfig.scaled()
        config = replace(
            config, host=replace(config.host, dram_capacity_bytes=16 * 1024)
        )
        router = build_router(
            small_vectors, num_shards=2, config=config, platform="cpu"
        )
        blocking = _run_stream(router, pipelined=False, pool=pool)
        pipelined = _run_stream(router, pipelined=True, pool=pool)
        assert pipelined.qps > blocking.qps
        assert pipelined.latency_p99_s <= blocking.latency_p99_s


class TestCoalescing:
    @pytest.fixture(scope="class")
    def pool(self, small_vectors):
        return np.ascontiguousarray(small_vectors[:8] + 0.02)

    @pytest.fixture(scope="class")
    def router(self, small_vectors):
        return build_router(
            small_vectors, num_shards=1, config=NDSearchConfig.scaled()
        )

    def test_duplicates_coalesce_and_books_balance(self, router, pool):
        report = _run_stream(
            router, pipelined=True, coalesce=True, zipf=1.2, n=150, pool=pool
        )
        assert report.coalesced > 0
        assert report.served == 150
        assert (
            report.completed + report.cache_hits + report.coalesced
            == report.served
        )

    def test_followers_get_leader_results(self, router, pool):
        stream = QueryStream(
            PoissonArrivals(5000.0), pool_size=pool.shape[0], n_requests=60,
            k=5, zipf_exponent=1.5, seed=7,
        ).generate()
        frontend = ServingFrontend(
            router,
            ServingConfig(
                policy=BatchPolicy(max_batch_size=8, max_wait_s=2e-3),
                cache_capacity=0,
                coalesce=True,
            ),
        )
        frontend.run(stream, pool)
        followers = [r for r in stream if r.outcome == COALESCED]
        leaders = {
            r.query_id: r for r in stream if r.outcome == COMPLETED
        }
        assert followers, "skewed stream at this rate must coalesce"
        for follower in followers:
            assert follower.done
            assert follower.completion_s >= follower.arrival_s
            assert follower.result_ids is not None
            assert follower.result_ids.shape == (follower.k,)
            # A leader with the same query exists and the follower's
            # results match some completed search of that query.
            leader = leaders.get(follower.query_id)
            assert leader is not None
            np.testing.assert_array_equal(
                follower.result_ids, leader.result_ids[: follower.k]
            )

    def test_coalescing_reduces_searches(self, router, pool):
        with_c = _run_stream(
            router, pipelined=True, coalesce=True, zipf=1.2, n=150, pool=pool
        )
        without = _run_stream(
            router, pipelined=True, coalesce=False, zipf=1.2, n=150, pool=pool
        )
        assert with_c.completed < without.completed
        assert with_c.served == without.served == 150

    def test_disabled_coalescing_has_no_coalesced_outcomes(self, router, pool):
        report = _run_stream(
            router, pipelined=True, coalesce=False, zipf=1.2, n=100, pool=pool
        )
        assert report.coalesced == 0

    def test_repeat_at_exact_completion_time_is_a_cache_hit(self, router, pool):
        """A repeat arriving exactly when its leader's results land
        must read the cache, not coalesce: the coalescing window is
        open only while completion is strictly in the future."""
        base = QueryStream(
            PoissonArrivals(100.0), pool_size=pool.shape[0], n_requests=1,
            k=5, seed=3,
        ).generate()
        leader = base[0]
        frontend = ServingFrontend(
            router,
            ServingConfig(
                policy=BatchPolicy(max_batch_size=1),
                cache_capacity=8,
                coalesce=True,
            ),
        )
        # Dry-run an identical frontend to learn the leader's exact
        # completion, then replay with a follower at that instant.
        probe = ServingFrontend(
            router,
            ServingConfig(policy=BatchPolicy(max_batch_size=1),
                          cache_capacity=8, coalesce=True),
        )
        probe_req = [Request(0, leader.query_id, leader.arrival_s, k=5)]
        probe.run(probe_req, pool)
        completion = probe_req[0].completion_s
        requests = [
            Request(0, leader.query_id, leader.arrival_s, k=5),
            Request(1, leader.query_id, completion, k=5),
            # Strictly inside the window for contrast: this one coalesces.
            Request(2, leader.query_id, (leader.arrival_s + completion) / 2, k=5),
        ]
        report = frontend.run(requests, pool)
        assert requests[0].outcome == COMPLETED
        assert requests[2].outcome == COALESCED
        assert requests[2].completion_s == completion
        assert requests[1].outcome == "cache_hit"
        assert requests[1].completion_s > completion
        assert report.cache_hits == 1 and report.coalesced == 1

    def test_followers_are_never_shed(self, router, pool):
        """Coalescing precedes admission: a duplicate of an in-flight
        query is answered work, not queue load, even at capacity."""
        stream = QueryStream(
            PoissonArrivals(50000.0), pool_size=pool.shape[0],
            n_requests=200, k=5, zipf_exponent=1.5, seed=19,
        ).generate()
        frontend = ServingFrontend(
            router,
            ServingConfig(
                policy=BatchPolicy(max_batch_size=8, max_wait_s=2e-3),
                cache_capacity=0,
                admission_capacity=4,
                coalesce=True,
            ),
        )
        report = frontend.run(stream, pool)
        assert report.shed > 0, "overload setup must actually shed"
        assert report.coalesced > 0
        # No shed request had a coalescible in-flight leader: every
        # shed query was either absent from the system or only present
        # as another shed/completed-before-arrival request.
        shed = [r for r in stream if r.outcome == SHED]
        for request in shed:
            leaders = [
                other
                for other in stream
                if other.query_id == request.query_id
                and other.outcome == COMPLETED
                and other.arrival_s <= request.arrival_s
                and (other.completion_s or 0) > request.arrival_s
            ]
            assert not leaders, (
                f"request {request.request_id} shed despite in-flight "
                f"leader(s) {[o.request_id for o in leaders]}"
            )
