"""Shared fixtures: small datasets, graphs and device configurations.

Everything here is deliberately tiny (hundreds of vectors, a handful of
flash channels) so the full suite runs in seconds; the benchmarks
exercise the paper-scale ratios.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

# Property tests run *randomized* by default: random example generation
# is what once surfaced the HNSW self-recall miss (a stored vector not
# returned at distance 0 for k=1, ef=8 — fixed since by multi-entry
# restart pivots, the nearest-neighbor in-link pass and the ef floor in
# HNSWIndex.search), and randomization is the suite's bug-finding
# power.  Set REPRO_DERANDOMIZE=1 to pin example generation (the
# fixed-seed fallback CI's tier-1 gate uses, so that gate stays
# deterministic while a separate CI job keeps hunting with fresh
# examples).
settings.register_profile("deterministic", derandomize=True)
settings.register_profile("randomized", derandomize=False)
settings.load_profile(
    "deterministic"
    if os.environ.get("REPRO_DERANDOMIZE", "") not in ("", "0")
    else "randomized"
)

from repro.ann import HNSWIndex, HNSWParams
from repro.sim.pool import workers_from_env
from repro.ann.distance import DistanceMetric
from repro.ann.graph import ProximityGraph
from repro.core.config import HostConfig, NDSearchConfig, SchedulingFlags
from repro.flash.geometry import SSDGeometry
from repro.flash.timing import FlashTiming


@pytest.fixture(scope="session")
def pool_workers() -> int:
    """Worker-pool fan-out width from the ``REPRO_POOL_WORKERS``
    environment variable (0 = serial).

    Tests that sweep independent rows read this instead of inventing
    flags, so CI jobs (e.g. the randomized property job) opt into
    pooled fan-out with one env var and zero plumbing.  Pooled and
    serial sweeps are byte-identical by the pool's contract, so the
    setting can never change a test's verdict — only its wall-clock.
    """
    return workers_from_env()


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def small_vectors(rng):
    """A clustered (400, 16) float32 corpus."""
    centers = rng.normal(size=(8, 16))
    assign = rng.integers(0, 8, size=400)
    return (centers[assign] + 0.3 * rng.normal(size=(400, 16))).astype(np.float32)


@pytest.fixture(scope="session")
def small_queries(rng, small_vectors):
    picks = rng.integers(0, small_vectors.shape[0], size=16)
    noise = 0.05 * rng.normal(size=(16, 16)).astype(np.float32)
    return small_vectors[picks] + noise


@pytest.fixture(scope="session")
def small_hnsw(small_vectors):
    return HNSWIndex(small_vectors, HNSWParams(M=6, ef_construction=24))


@pytest.fixture(scope="session")
def small_graph(small_hnsw) -> ProximityGraph:
    return small_hnsw.base_graph()


@pytest.fixture(scope="session")
def tiny_geometry() -> SSDGeometry:
    """2 channels x 2 chips x 2 LUNs x 2 planes, 1 KB pages."""
    return SSDGeometry(
        channels=2,
        chips_per_channel=2,
        luns_per_chip=2,
        planes_per_lun=2,
        blocks_per_plane=8,
        pages_per_block=8,
        page_size=1024,
    )


@pytest.fixture()
def tiny_config(tiny_geometry) -> NDSearchConfig:
    return NDSearchConfig(
        geometry=tiny_geometry,
        timing=FlashTiming(read_page_s=20e-6),
        host=HostConfig(
            dram_capacity_bytes=64 * 1024, vram_capacity_bytes=64 * 1024
        ),
        flags=SchedulingFlags(),
        dram_bytes=16 * 1024**2,
    )


@pytest.fixture(scope="session")
def ring_graph() -> ProximityGraph:
    """A 32-vertex ring: deterministic topology for scheduling tests."""
    n = 32
    adjacency = [[(v - 1) % n, (v + 1) % n] for v in range(n)]
    vectors = np.arange(n, dtype=np.float32)[:, None].repeat(4, axis=1)
    return ProximityGraph.from_adjacency(vectors, adjacency)
