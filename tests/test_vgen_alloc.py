"""Tests for the Vgenerator and Allocator functional units."""

import numpy as np
import pytest

from repro.core.allocator import Allocator
from repro.core.luncsr import LUNCSR
from repro.core.placement import map_vertices
from repro.core.vgenerator import Vgenerator


@pytest.fixture()
def luncsr(small_graph, tiny_geometry):
    vector_bytes = small_graph.dim * 4
    placement = map_vertices(small_graph.num_vertices, tiny_geometry, vector_bytes)
    return LUNCSR.build(small_graph, placement, vector_bytes)


@pytest.fixture()
def vgen(luncsr):
    return Vgenerator(luncsr)


@pytest.fixture()
def allocator(luncsr):
    return Allocator(luncsr)


class TestVgenerator:
    def test_fetch_returns_neighbors_and_luns(self, vgen, luncsr):
        entry = vgen.fetch(query_id=3, entry_vertex=10)
        assert np.array_equal(entry.neighbor_ids, luncsr.neighbors_of(10))
        assert np.array_equal(entry.lun_ids, luncsr.lun[entry.neighbor_ids])

    def test_fetch_counts_dram_traffic(self, vgen, luncsr):
        degree = luncsr.neighbors_of(10).size
        vgen.fetch(0, 10)
        # OFS (2) + NBR (deg) + LUN (deg) array reads.
        assert vgen.counters["dram_accesses"] == 2 + 2 * degree

    def test_fetch_batch_pipelines(self, vgen):
        entries = vgen.fetch_batch([(0, 1), (1, 2), (2, 3)])
        assert len(entries) == 3
        assert vgen.counters["vgen_fetches"] == 3

    def test_pipeline_latency_three_stages(self, vgen):
        stage = 100e-9
        assert vgen.pipeline_latency_s(1, stage) == pytest.approx(3 * stage)
        assert vgen.pipeline_latency_s(10, stage) == pytest.approx(12 * stage)
        assert vgen.pipeline_latency_s(0, stage) == 0.0

    def test_prefetch_uses_pref_unit(self, vgen, small_graph):
        first = small_graph.neighbors(0).astype(np.int64)
        out = vgen.prefetch(small_graph, first, width=4)
        assert out.size <= 4
        assert vgen.counters["prefetch_selections"] == out.size


class TestAllocator:
    def test_dispatch_partitions_by_lun(self, allocator, vgen, luncsr):
        entries = vgen.fetch_batch([(0, 5), (1, 9)])
        partitions = allocator.dispatch(entries)
        for lun, part in partitions.items():
            assert all(luncsr.lun_of(v) == lun for v in part.vertex_ids)
            assert len(part.addresses) == len(part.vertex_ids)

    def test_dispatch_preserves_pair_count(self, allocator, vgen):
        entries = vgen.fetch_batch([(0, 5), (1, 9), (2, 20)])
        total = sum(e.neighbor_ids.size for e in entries)
        partitions = allocator.dispatch(entries)
        assert sum(len(p) for p in partitions.values()) == total
        assert allocator.counters["alloc_dispatches"] == total

    def test_generate_address_matches_luncsr(self, allocator, luncsr):
        assert allocator.generate_address(17) == luncsr.physical_address(17)

    def test_sequential_dispatch_no_cross_query_grouping(self, allocator, vgen):
        entries = vgen.fetch_batch([(0, 5), (1, 5)])  # same entry vertex
        sequential = allocator.dispatch_sequential(entries)
        # Each query produces its own LUN partitions.
        queries_per_part = [set(p.query_ids) for p in sequential]
        assert all(len(qs) == 1 for qs in queries_per_part)

    def test_grouped_dispatch_shares_across_queries(self, allocator, vgen):
        entries = vgen.fetch_batch([(0, 5), (1, 5)])
        grouped = allocator.dispatch(entries)
        assert any(len(p.queries()) == 2 for p in grouped.values())

    def test_address_generation_tracks_refreshes(
        self, allocator, luncsr, tiny_geometry
    ):
        from repro.flash.ftl import FlashTranslationLayer

        ftl = FlashTranslationLayer(tiny_geometry)
        luncsr.attach_to_ftl(ftl)
        v = 3
        lun, plane = int(luncsr.lun[v]), int(luncsr.plane[v])
        event = ftl.refresh_block(lun, plane, int(luncsr.blk[v]))
        assert allocator.generate_address(v).block == event.new_block
