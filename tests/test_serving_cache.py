"""LRU cache semantics and hit/miss accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.cache import LRUCache, ResultCache


class TestLRUCache:
    def test_hit_miss_accounting(self):
        cache = LRUCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")        # refresh a: b is now LRU
        cache.put("c", 3)     # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)    # refresh by overwrite
        cache.put("c", 3)     # evicts b, not a
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_capacity_zero_disables(self):
        cache = LRUCache(capacity=0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.misses == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=-1)


class TestResultCache:
    def test_roundtrip_and_isolation(self):
        cache = ResultCache(capacity=4)
        ids = np.array([3, 1, 2])
        dists = np.array([0.1, 0.2, 0.3])
        cache.store(7, 3, ids, dists)
        ids[0] = 99  # caller mutates its copy after storing
        got = cache.lookup(7, 3)
        assert got is not None
        np.testing.assert_array_equal(got[0], [3, 1, 2])

    def test_k_is_part_of_the_key(self):
        cache = ResultCache(capacity=4)
        cache.store(7, 3, np.arange(3), np.zeros(3))
        assert cache.lookup(7, 5) is None
        assert cache.lookup(7, 3) is not None


class TestFrontendCacheAccounting:
    def test_skewed_stream_hits_and_books_balance(self, small_vectors):
        from repro.core.config import NDSearchConfig
        from repro.serving import (
            BatchPolicy,
            PoissonArrivals,
            QueryStream,
            ServingConfig,
            ServingFrontend,
            build_router,
        )

        pool = small_vectors[:16] + 0.01
        router = build_router(
            small_vectors, num_shards=1, config=NDSearchConfig.scaled()
        )
        stream = QueryStream(
            PoissonArrivals(500.0),
            pool_size=pool.shape[0],
            n_requests=150,
            k=4,
            zipf_exponent=1.2,
            seed=11,
        )
        frontend = ServingFrontend(
            router,
            ServingConfig(policy=BatchPolicy(max_batch_size=8, max_wait_s=2e-3)),
        )
        report = frontend.run(stream.generate(), pool)
        # 16 distinct queries, 150 requests: repeats must hit.
        assert report.cache_hits > 0
        # Books balance: every request is searched, a cache hit,
        # coalesced onto an in-flight search, or shed.
        assert (
            report.completed + report.cache_hits + report.coalesced
            + report.shed
            == report.offered
        )
        assert report.cache_hit_rate == report.cache_hits / report.served
        # Frontend counters agree with the cache's own books.
        assert frontend.cache.hits == report.cache_hits
        # Repeats mostly hit; a query can miss more than once only in
        # the window between its first arrival and that batch's close,
        # so misses stay near the pool size.
        assert report.completed <= 2 * pool.shape[0]
        assert report.cache_hit_rate > 0.7
