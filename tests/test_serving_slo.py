"""SLO-aware serving: service model, slo batch policy, priority
admission and autoscaling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import NDSearchConfig
from repro.serving import (
    AutoscalePolicy,
    BatchPolicy,
    PoissonArrivals,
    QueryStream,
    ServiceModel,
    ServingConfig,
    ServingFrontend,
    ShardDevice,
    build_router,
)
from repro.serving.admission import select_victim, urgency_key
from repro.serving.autoscale import Autoscaler
from repro.serving.batcher import DynamicBatcher
from repro.serving.request import COMPLETED, SHED, Request
from repro.serving.sharding import PARTITIONED
from repro.sim.stats import SimResult, serial_timeline


@pytest.fixture(scope="module")
def config():
    return NDSearchConfig.scaled()


@pytest.fixture(scope="module")
def pool(small_vectors):
    return np.ascontiguousarray(small_vectors[:24] + 0.02)


def slo_stream(pool, *, n=200, rate=3000.0, slo=None, seed=11,
               priorities=(0,), weights=None):
    return QueryStream(
        PoissonArrivals(rate),
        pool_size=pool.shape[0],
        n_requests=n,
        k=5,
        zipf_exponent=0.0,
        seed=seed,
        priorities=priorities,
        priority_weights=weights,
        slo_s=slo,
    ).generate()


class TestServiceModel:
    def test_uncalibrated_returns_none(self):
        model = ServiceModel()
        assert not model.calibrated
        assert model.estimate_chain(8) is None
        assert model.estimate(8) is None

    def test_affine_fit_recovers_per_resource_model(self):
        """duration = a + b*n per resource is recovered exactly from
        exact affine observations."""
        model = ServiceModel()
        for n in (2, 8, 16, 32):
            model.observe(
                n,
                [("read", 1e-3 + 2e-5 * n), ("mac", 5e-4 + 1e-5 * n)],
            )
        chain = model.estimate_chain(24)
        assert [r for r, _ in chain] == ["read", "mac"]
        assert chain[0][1] == pytest.approx(1e-3 + 2e-5 * 24, rel=1e-9)
        assert chain[1][1] == pytest.approx(5e-4 + 1e-5 * 24, rel=1e-9)
        assert model.estimate(24) == pytest.approx(
            1e-3 + 2e-5 * 24 + 5e-4 + 1e-5 * 24, rel=1e-9
        )

    def test_single_size_scales_proportionally(self):
        """One observed size: proportional scaling (over-predicting
        small batches, the safe direction for deadline closes)."""
        model = ServiceModel()
        model.observe(10, [("device", 1e-2)])
        assert model.estimate(10) == pytest.approx(1e-2)
        assert model.estimate(20) == pytest.approx(2e-2)
        assert model.estimate(5) == pytest.approx(5e-3)

    def test_estimates_never_negative(self):
        """A fitted negative intercept cannot produce a negative
        stage estimate for tiny batches."""
        model = ServiceModel()
        model.observe(10, [("device", 1e-3)])
        model.observe(100, [("device", 1e-1)])
        assert model.estimate(1) >= 0.0

    def test_rejects_degenerate_batches(self):
        with pytest.raises(ValueError):
            ServiceModel().observe(0, [("device", 1.0)])


class TestUrgency:
    def test_priority_dominates_then_deadline(self):
        low = Request(0, 0, 0.0, priority=0, deadline_s=1.0)
        high_late = Request(1, 0, 0.0, priority=1, deadline_s=9.0)
        high_soon = Request(2, 0, 0.0, priority=1, deadline_s=2.0)
        best_effort = Request(3, 0, 0.0, priority=1)
        order = sorted(
            [low, high_late, high_soon, best_effort], key=urgency_key
        )
        assert order[0] is low             # lowest priority: least urgent
        assert order[1] is best_effort     # no deadline: last in class
        assert order[2] is high_late
        assert order[3] is high_soon

    def test_select_victim_requires_strictly_less_urgent(self):
        queued = [
            Request(0, 0, 0.0, priority=1, deadline_s=1.0),
            Request(1, 0, 0.0, priority=0, deadline_s=5.0),
        ]
        incoming = Request(2, 0, 0.1, priority=1, deadline_s=0.5)
        assert select_victim(queued, incoming) is queued[1]
        # An equal-urgency arrival does not churn the queue.
        peer = Request(3, 0, 0.1, priority=0, deadline_s=5.0)
        assert select_victim([queued[1]], peer) is None
        assert select_victim([], incoming) is None


def _stage_result(duration, batch=4):
    timeline = serial_timeline([("work", "engine", duration)])
    return SimResult("x", "hnsw", "synthetic", batch, duration,
                     timeline=timeline)


def _chain_result(stages, batch=4):
    timeline = serial_timeline(stages)
    return SimResult("x", "hnsw", "synthetic", batch, timeline[-1].end,
                     timeline=timeline)


class TestSloBatcher:
    def _predictor(self, service_per_batch):
        """Unqueued predictor: completion = close + flat service."""
        return lambda n, at: at + service_per_batch

    def test_requires_predictor(self):
        with pytest.raises(ValueError):
            DynamicBatcher(BatchPolicy(mode="slo"))

    def test_loose_deadline_caps_at_max_wait(self):
        batcher = DynamicBatcher(
            BatchPolicy(max_batch_size=8, max_wait_s=2e-3, mode="slo"),
            predictor=self._predictor(1e-3),
        )
        batcher.offer(Request(0, 0, 1.0, deadline_s=2.0))
        # Plenty of slack: the staleness cap (arrival + max_wait) rules.
        assert batcher.deadline() == pytest.approx(1.002)

    def test_tight_deadline_closes_before_predicted_breach(self):
        batcher = DynamicBatcher(
            BatchPolicy(max_batch_size=8, max_wait_s=10e-3, mode="slo"),
            predictor=self._predictor(2e-3),
        )
        batcher.offer(Request(0, 0, 1.0, deadline_s=1.005))
        # Latest close meeting the deadline: 1.005 - 0.002 service.
        assert batcher.deadline() == pytest.approx(1.003)
        assert not batcher.expired(1.0025)
        assert batcher.expired(1.003)

    def test_margin_closes_earlier(self):
        batcher = DynamicBatcher(
            BatchPolicy(max_batch_size=8, max_wait_s=10e-3, mode="slo",
                        slo_margin_s=1e-3),
            predictor=self._predictor(2e-3),
        )
        batcher.offer(Request(0, 0, 1.0, deadline_s=1.005))
        assert batcher.deadline() == pytest.approx(1.002)

    def test_most_urgent_member_drives_the_close(self):
        batcher = DynamicBatcher(
            BatchPolicy(max_batch_size=8, max_wait_s=10e-3, mode="slo"),
            predictor=self._predictor(2e-3),
        )
        batcher.offer(Request(0, 0, 1.0, deadline_s=1.009))
        assert batcher.deadline() == pytest.approx(1.007)
        batcher.offer(Request(1, 1, 1.001, deadline_s=1.004))
        # The new, tighter member pulls the close earlier.
        assert batcher.deadline() == pytest.approx(1.002)

    def test_infeasible_deadline_floors_at_newest_arrival(self):
        """A deadline that cannot be met even by closing now closes
        immediately (floored at the newest member's arrival)."""
        drain_until = 5.0

        def queued_predictor(n, at):
            return max(at, drain_until) + 2e-3

        batcher = DynamicBatcher(
            BatchPolicy(max_batch_size=8, max_wait_s=10e-3, mode="slo"),
            predictor=queued_predictor,
        )
        batcher.offer(Request(0, 0, 1.0, deadline_s=1.004))
        assert batcher.deadline() == pytest.approx(1.0)
        assert batcher.expired(1.0)

    def test_deadline_free_members_fall_back_to_max_wait(self):
        batcher = DynamicBatcher(
            BatchPolicy(max_batch_size=8, max_wait_s=2e-3, mode="slo"),
            predictor=self._predictor(1e-3),
        )
        batcher.offer(Request(0, 0, 1.0))
        assert batcher.deadline() == pytest.approx(1.002)

    def test_uncalibrated_predictor_falls_back_to_max_wait(self):
        batcher = DynamicBatcher(
            BatchPolicy(max_batch_size=8, max_wait_s=2e-3, mode="slo"),
            predictor=lambda n, at: None,
        )
        batcher.offer(Request(0, 0, 1.0, deadline_s=1.0005))
        assert batcher.deadline() == pytest.approx(1.002)


class TestSloServing:
    def run_policy(self, router, pool, policy, *, n=250, rate=4000.0,
                   slo=6e-3, priority_admission=False, capacity=None):
        requests = slo_stream(pool, n=n, rate=rate, slo=slo)
        frontend = ServingFrontend(
            router,
            ServingConfig(
                policy=policy,
                cache_capacity=0,
                coalesce=False,
                admission_capacity=capacity,
                priority_admission=priority_admission,
            ),
        )
        return frontend.run(requests, pool), requests

    def test_slo_policy_meets_deadlines_a_long_wait_would_miss(
        self, small_vectors, pool, config
    ):
        """Against a max-wait policy whose wait alone exceeds the
        deadline, the slo policy closes early enough to meet it."""
        router = build_router(small_vectors, num_shards=1, config=config)
        lazy = BatchPolicy(max_batch_size=64, max_wait_s=20e-3)
        slo = BatchPolicy(max_batch_size=64, max_wait_s=20e-3, mode="slo")
        lazy_report, _ = self.run_policy(router, pool, lazy)
        slo_report, slo_requests = self.run_policy(router, pool, slo)
        assert slo_report.deadline_total == lazy_report.deadline_total > 0
        assert slo_report.deadline_miss_rate < lazy_report.deadline_miss_rate
        assert slo_report.goodput_qps > lazy_report.goodput_qps
        # The adaptive close still batches where slack allows: the
        # calibration batches aside, batch sizes stay above greedy.
        assert slo_report.mean_batch_size >= 1.0
        # Reported attainment matches the per-request ground truth.
        met = sum(
            1 for r in slo_requests
            if r.done and r.completion_s <= r.deadline_s
        )
        assert slo_report.deadline_total - slo_report.deadline_misses == met

    def test_slo_deadline_metrics_report_consistency(
        self, small_vectors, pool, config
    ):
        router = build_router(small_vectors, num_shards=1, config=config)
        report, requests = self.run_policy(
            router, pool,
            BatchPolicy(max_batch_size=16, max_wait_s=4e-3, mode="slo"),
        )
        assert report.deadline_total == len(requests)
        assert 0.0 <= report.deadline_miss_rate <= 1.0
        stats = report.priority_stats[0]
        assert stats["offered"] == len(requests)
        assert stats["met"] == report.deadline_total - report.deadline_misses

    def test_slo_policy_works_partitioned(self, small_vectors, pool, config):
        """Drain prediction joins on the slowest shard in partitioned
        mode; the policy must run there too."""
        router = build_router(
            small_vectors, num_shards=2, config=config, mode=PARTITIONED,
            seed=4,
        )
        report, _ = self.run_policy(
            router, pool,
            BatchPolicy(max_batch_size=16, max_wait_s=4e-3, mode="slo"),
            n=120,
        )
        assert report.served == 120
        assert report.deadline_total == 120

    def test_slo_policy_still_batches_with_selective_probing(
        self, small_vectors, pool, config
    ):
        """Under nprobe the predictor estimates the *expected*
        sub-batch chain instead of pricing a full-size batch on every
        shard — a pessimistic full-pool prediction would declare every
        deadline infeasible and collapse batches toward size one."""
        router = build_router(
            small_vectors, num_shards=4, config=config, mode=PARTITIONED,
            seed=4,
        )
        requests = slo_stream(pool, n=160, rate=4000.0, slo=6e-3)
        frontend = ServingFrontend(
            router,
            ServingConfig(
                policy=BatchPolicy(
                    max_batch_size=16, max_wait_s=4e-3, mode="slo"
                ),
                cache_capacity=0,
                coalesce=False,
                nprobe=2,
            ),
        )
        report = frontend.run(requests, pool)
        assert report.served == 160
        assert report.mean_batch_size > 2.0
        assert report.deadline_miss_rate <= 0.05

    def test_all_shed_class_attains_nothing(self):
        """A class whose deadline-carrying requests were all shed must
        report 0 attainment, not a vacuous 100%."""
        from repro.serving.metrics import MetricsCollector

        collector = MetricsCollector(1)
        request = Request(0, 0, 0.0, priority=1, deadline_s=1e-3)
        collector.observe_arrival(request, 0)
        request.outcome = SHED
        collector.observe_shed(request)
        report = collector.report()
        assert report.priority_stats[1]["attainment"] == 0.0
        assert report.deadline_miss_rate == 1.0


class TestPriorityAdmission:
    def overload(self, router, pool, *, priority_admission):
        requests = slo_stream(
            pool, n=240, rate=60000.0, slo={1: 8e-3},
            priorities=(0, 1), weights=(0.7, 0.3), seed=13,
        )
        frontend = ServingFrontend(
            router,
            ServingConfig(
                policy=BatchPolicy(max_batch_size=8, max_wait_s=2e-3),
                cache_capacity=0,
                coalesce=False,
                admission_capacity=12,
                priority_admission=priority_admission,
            ),
        )
        report = frontend.run(requests, pool)
        return report, requests, frontend

    def test_preemption_sheds_lowest_priority_first(
        self, small_vectors, pool, config
    ):
        router = build_router(small_vectors, num_shards=1, config=config)
        fifo_report, fifo_requests, _ = self.overload(
            router, pool, priority_admission=False
        )
        prio_report, prio_requests, frontend = self.overload(
            router, pool, priority_admission=True
        )
        assert fifo_report.shed > 0 and prio_report.shed > 0
        shed_high_fifo = sum(
            1 for r in fifo_requests if r.outcome == SHED and r.priority == 1
        )
        shed_high_prio = sum(
            1 for r in prio_requests if r.outcome == SHED and r.priority == 1
        )
        # Priority admission protects the high class under overload.
        assert shed_high_prio < shed_high_fifo
        assert frontend.admission.preemptions > 0
        # Books balance: preemption swaps, never loses, requests.
        assert prio_report.served + prio_report.shed == 240
        done = [r for r in prio_requests if r.done]
        shed = [r for r in prio_requests if r.outcome == SHED]
        assert len(done) == prio_report.served
        assert len(shed) == prio_report.shed
        high = prio_report.priority_stats[1]
        low = prio_report.priority_stats[0]
        assert high["shed"] / high["offered"] < low["shed"] / low["offered"]

    def test_preemption_disabled_without_flag(
        self, small_vectors, pool, config
    ):
        router = build_router(small_vectors, num_shards=1, config=config)
        _, _, frontend = self.overload(router, pool, priority_admission=False)
        assert frontend.admission.preemptions == 0


class TestAutoscaler:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(min_replicas=0)
        with pytest.raises(ValueError):
            AutoscalePolicy(min_replicas=4, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscalePolicy(interval_s=0.0)
        with pytest.raises(ValueError):
            AutoscalePolicy(low_utilization=0.9, high_utilization=0.8)
        with pytest.raises(ValueError):
            AutoscalePolicy(low_queue_depth=20.0, high_queue_depth=10.0)

    def test_scales_up_on_saturation_and_down_when_idle(self):
        policy = AutoscalePolicy(
            min_replicas=1, max_replicas=4, interval_s=1.0,
            high_utilization=0.8, low_utilization=0.2,
            high_queue_depth=10.0, low_queue_depth=1.0,
        )
        scaler = Autoscaler(policy)
        assert scaler.decide(0.0, 1, [0.0]) == 1  # first call arms the epoch
        # A saturated epoch (busy delta == window) scales up.
        assert scaler.decide(1.0, 1, [1.0]) == 2
        assert scaler.events[-1].reason == "high utilization"
        # A deep queue scales up even at modest utilization.
        for _ in range(40):
            scaler.observe_depth(50)
        assert scaler.decide(2.0, 2, [1.3, 0.3]) == 3
        assert scaler.events[-1].reason == "deep queue"
        # Idle epochs walk back down one step per epoch.
        assert scaler.decide(3.0, 3, [1.3, 0.3, 0.0]) == 2
        assert scaler.events[-1].reason == "idle capacity"
        assert scaler.decide(4.0, 2, [1.3, 0.3, 0.0]) == 1
        # Floor: never below min_replicas.
        assert scaler.decide(5.0, 1, [1.3, 0.3, 0.0]) == 1

    def test_multi_epoch_catch_up_with_scale_up_does_not_crash(self):
        """Regression: a catch-up spanning several epochs whose first
        evaluation scales up used to index busy_s past its end (the
        frontend grows the device list only after decide() returns)."""
        policy = AutoscalePolicy(min_replicas=1, max_replicas=4,
                                 interval_s=0.05)
        scaler = Autoscaler(policy)
        scaler.decide(0.0, 1, [0.0])
        active = scaler.decide(1.0, 1, [0.10])  # 20 epochs at once
        assert 1 <= active <= 4
        # Committed busy spreads across the epochs it spans (carry):
        # the first saturated epoch scales up; the second spends the
        # carried 0.05 s over the now-2-replica pool (util 0.5, inside
        # the hysteresis band), and only then does the idle tail walk
        # back down — no phantom oscillation.
        ups = [e for e in scaler.events if e.replicas_after > e.replicas_before]
        assert len(ups) == 1
        assert ups[0].utilization == 1.0
        downs = [e for e in scaler.events if e.replicas_after < e.replicas_before]
        assert all(e.time_s > ups[0].time_s for e in downs)
        assert active == 1  # idle tail returns the pool to the floor

    def test_predictor_mirrors_the_dispatch_rule(self, small_vectors, config):
        """Regression: replicated prediction must price the device
        dispatch will pick (earliest entry/drain), not the device with
        the soonest predicted completion — an optimistic min() held
        batches open past deadlines the real dispatch then missed."""
        router = build_router(small_vectors, num_shards=2, config=config)
        frontend = ServingFrontend(
            router,
            ServingConfig(policy=BatchPolicy(max_batch_size=8)),
        )
        # Device A: entry frees late (t=5) but drains by 9.
        # Device B: entry frees early (t=2) but drains at 13.
        frontend.devices[0].serve(
            _chain_result([("s", "entry", 5.0), ("t", "out", 4.0)]), 0.0
        )
        frontend.devices[1].serve(
            _chain_result([("s", "entry", 2.0), ("t", "out", 11.0)]), 0.0
        )
        for n in (4, 8):  # constant chain: the fit is size-independent
            frontend.service_model.observe(n, [("entry", 1.0), ("out", 3.0)])
        # Dispatch key (earliest_start, drain_at) picks B: (2, 13) < (5, 9).
        # B runs entry[2,3] then out[max(3,13)=13,16] -> completes 16.
        # The old min-completion prediction reported A's 12 instead.
        assert frontend.predict_completion(4, 0.0) == pytest.approx(16.0)

    def test_long_gap_steps_one_epoch_at_a_time(self):
        policy = AutoscalePolicy(min_replicas=1, max_replicas=8,
                                 interval_s=1.0)
        scaler = Autoscaler(policy)
        scaler.decide(0.0, 4, [0.0] * 4)
        # Ten idle epochs elapse at once: sheds one replica per epoch.
        assert scaler.decide(10.0, 4, [0.0] * 4) == 1
        assert len(scaler.events) == 3

    def test_autoscaling_requires_replicated_mode(
        self, small_vectors, config
    ):
        router = build_router(
            small_vectors, num_shards=2, config=config, mode=PARTITIONED,
            seed=4,
        )
        with pytest.raises(ValueError):
            ServingFrontend(
                router, ServingConfig(autoscale=AutoscalePolicy())
            )

    def test_autoscale_rejects_a_pool_larger_than_its_ceiling(
        self, small_vectors, config
    ):
        """An explicitly built pool must not be silently clamped below
        its size — replicas the dispatcher would never use."""
        router = build_router(small_vectors, num_shards=3, config=config)
        with pytest.raises(ValueError):
            ServingFrontend(
                router,
                ServingConfig(autoscale=AutoscalePolicy(max_replicas=2)),
            )

    def test_autoscaled_run_sheds_less_and_holds_the_tail(
        self, small_vectors, pool, config
    ):
        """Offered load above one replica's capacity: the autoscaled
        pool grows, sheds less and holds a lower p99 than the static
        single replica (the acceptance shape of the benchmark sweep)."""
        router_static = build_router(small_vectors, num_shards=1, config=config)

        def run(autoscale):
            router = build_router(small_vectors, num_shards=1, config=config)
            requests = slo_stream(pool, n=400, rate=25000.0, seed=21)
            # Small batches at this rate close faster than one device
            # drains them, so the static pool's in-service backlog — not
            # the batcher queue — is what fills the admission bound.
            frontend = ServingFrontend(
                router,
                ServingConfig(
                    policy=BatchPolicy(max_batch_size=4, max_wait_s=2e-3),
                    cache_capacity=0,
                    coalesce=False,
                    admission_capacity=48,
                    autoscale=autoscale,
                ),
            )
            return frontend.run(requests, pool), frontend

        static_report, _ = run(None)
        scaled_report, frontend = run(
            AutoscalePolicy(
                min_replicas=1, max_replicas=4, interval_s=2e-3,
                high_utilization=0.7, high_queue_depth=8.0,
            )
        )
        assert static_report.shed > 0
        assert scaled_report.shed < static_report.shed
        assert scaled_report.latency_p99_s < static_report.latency_p99_s
        assert scaled_report.scale_events, "overload must trigger scaling"
        assert scaled_report.replicas_final > 1
        assert frontend.router.num_shards == len(frontend.devices)
        # Replicas share the index: results identical to static serving
        # (spot-check recall parity is covered by the sweep; here the
        # books must balance).
        assert scaled_report.served + scaled_report.shed == 400
        assert len(scaled_report.shard_utilization) == len(frontend.devices)
        assert router_static.num_shards == 1  # untouched control

    def test_scale_events_are_json_friendly(self):
        import json

        policy = AutoscalePolicy(interval_s=1.0)
        scaler = Autoscaler(policy)
        scaler.decide(0.0, 1, [0.0])
        scaler.decide(1.0, 1, [1.0])
        payload = [e.to_dict() for e in scaler.events]
        assert json.loads(json.dumps(payload)) == payload


class TestStreamSloGeneration:
    def test_priorities_and_deadlines(self, pool):
        requests = slo_stream(
            pool, n=300, slo={1: 5e-3}, priorities=(0, 1),
            weights=(0.5, 0.5),
        )
        assert {r.priority for r in requests} == {0, 1}
        for r in requests:
            if r.priority == 1:
                assert r.deadline_s == pytest.approx(r.arrival_s + 5e-3)
            else:
                assert r.deadline_s is None

    def test_scalar_slo_applies_to_all(self, pool):
        requests = slo_stream(pool, n=50, slo=2e-3)
        assert all(
            r.deadline_s == pytest.approx(r.arrival_s + 2e-3)
            for r in requests
        )

    def test_validation(self, pool):
        with pytest.raises(ValueError):
            slo_stream(pool, n=10, priorities=())
        with pytest.raises(ValueError):
            slo_stream(pool, n=10, priorities=(0, 1), weights=(1.0,))
        with pytest.raises(ValueError):
            slo_stream(pool, n=10, slo=-1.0)
        with pytest.raises(ValueError):
            slo_stream(pool, n=10, priorities=(0, 1), weights=(0.0, 0.0))

    def test_slo_met_property(self):
        request = Request(0, 0, 1.0, deadline_s=1.01)
        assert request.slo_met is False  # not done yet counts as a miss
        request.outcome = COMPLETED
        request.completion_s = 1.005
        assert request.slo_met is True
        request.completion_s = 1.02
        assert request.slo_met is False
        assert Request(1, 0, 1.0).slo_met is None