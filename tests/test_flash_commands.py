"""Unit tests for the flash command model and <SearchPage> encoding."""

import pytest

from repro.flash.commands import (
    ChangeReadColumn,
    DistanceType,
    MultiPlaneRestrictionError,
    ReadPage,
    ReadStatusEnhanced,
    SearchPage,
    build_multi_lun_sequence,
    encode_dim,
    encode_precision,
    validate_multi_plane_group,
)
from repro.flash.geometry import PhysicalAddress, SSDGeometry


class TestSearchPageEncoding:
    def test_roundtrip(self, tiny_geometry):
        cmd = SearchPage(
            address=PhysicalAddress(lun=5, plane=1, block=3, page=6, byte=0),
            distance=DistanceType.ANGULAR,
            fv_dim_code=5,
            fv_prec_code=3,
            page_loc_bit=True,
        )
        word = cmd.encode(tiny_geometry)
        decoded = SearchPage.decode(word, tiny_geometry)
        assert decoded == cmd

    def test_roundtrip_paper_geometry(self):
        g = SSDGeometry.paper()
        cmd = SearchPage(
            address=PhysicalAddress(lun=255, plane=1, block=511, page=127),
            distance=DistanceType.INNER_PRODUCT,
        )
        assert SearchPage.decode(cmd.encode(g), g) == cmd

    def test_distance_field_is_two_bits(self, tiny_geometry):
        for d in DistanceType:
            cmd = SearchPage(
                address=PhysicalAddress(0, 0, 0, 0), distance=d
            )
            word = cmd.encode(tiny_geometry)
            assert word & 0b11 == int(d)

    def test_field_width_validation(self):
        with pytest.raises(ValueError):
            SearchPage(PhysicalAddress(0, 0, 0, 0), fv_dim_code=8)
        with pytest.raises(ValueError):
            SearchPage(PhysicalAddress(0, 0, 0, 0), fv_prec_code=16)

    def test_latency_is_page_sense(self, tiny_config):
        cmd = SearchPage(PhysicalAddress(0, 0, 0, 0))
        assert cmd.latency_s(tiny_config.timing) == tiny_config.timing.read_page_s

    def test_read_page_latency(self, tiny_config):
        cmd = ReadPage(PhysicalAddress(0, 0, 0, 0))
        assert cmd.latency_s(tiny_config.timing) == tiny_config.timing.read_page_s


class TestMultiPlaneRestrictions:
    def test_valid_group(self):
        validate_multi_plane_group(
            [
                PhysicalAddress(lun=1, plane=0, block=2, page=5),
                PhysicalAddress(lun=1, plane=1, block=2, page=5),
            ]
        )

    def test_duplicate_plane_rejected(self):
        with pytest.raises(MultiPlaneRestrictionError):
            validate_multi_plane_group(
                [
                    PhysicalAddress(lun=1, plane=0, block=2, page=5),
                    PhysicalAddress(lun=1, plane=0, block=3, page=5),
                ]
            )

    def test_cross_lun_rejected(self):
        with pytest.raises(MultiPlaneRestrictionError):
            validate_multi_plane_group(
                [
                    PhysicalAddress(lun=1, plane=0, block=2, page=5),
                    PhysicalAddress(lun=2, plane=1, block=2, page=5),
                ]
            )

    def test_mismatched_page_rejected(self):
        with pytest.raises(MultiPlaneRestrictionError):
            validate_multi_plane_group(
                [
                    PhysicalAddress(lun=1, plane=0, block=2, page=5),
                    PhysicalAddress(lun=1, plane=1, block=2, page=6),
                ]
            )

    def test_empty_group_rejected(self):
        with pytest.raises(MultiPlaneRestrictionError):
            validate_multi_plane_group([])


class TestMultiLunSequence:
    def test_sequence_shape_matches_fig9(self):
        cmds = [
            SearchPage(PhysicalAddress(lun=0, plane=0, block=0, page=0)),
            SearchPage(PhysicalAddress(lun=1, plane=0, block=0, page=0)),
        ]
        seq = build_multi_lun_sequence(cmds)
        # 2 SearchPage + 2 x (ReadStatusEnhanced + ChangeReadColumn)
        assert len(seq) == 6
        assert isinstance(seq[0], SearchPage)
        assert isinstance(seq[2], ReadStatusEnhanced)
        assert isinstance(seq[3], ChangeReadColumn)

    def test_search_targets_output_buffer(self):
        seq = build_multi_lun_sequence(
            [SearchPage(PhysicalAddress(lun=0, plane=0, block=0, page=0))]
        )
        statuses = [s for s in seq if isinstance(s, ReadStatusEnhanced)]
        assert all(s.target_output_buffer for s in statuses)

    def test_read_targets_page_buffer(self):
        seq = build_multi_lun_sequence(
            [ReadPage(PhysicalAddress(lun=0, plane=0, block=0, page=0))]
        )
        statuses = [s for s in seq if isinstance(s, ReadStatusEnhanced)]
        assert all(not s.target_output_buffer for s in statuses)

    def test_duplicate_lun_rejected(self):
        cmds = [
            SearchPage(PhysicalAddress(lun=0, plane=0, block=0, page=0)),
            SearchPage(PhysicalAddress(lun=0, plane=1, block=0, page=0)),
        ]
        with pytest.raises(MultiPlaneRestrictionError):
            build_multi_lun_sequence(cmds)

    def test_empty_sequence(self):
        assert build_multi_lun_sequence([]) == []


class TestDescriptors:
    def test_known_dims(self):
        assert encode_dim(128) == 5
        assert encode_dim(96) == 3

    def test_unknown_dim_is_zero(self):
        assert encode_dim(77) == 0

    def test_precision_codes(self):
        assert encode_precision(4) == 3
        assert encode_precision(3) == 0

    def test_metric_instruction_codes(self):
        from repro.ann.distance import DistanceMetric

        assert DistanceMetric.EUCLIDEAN.instruction_code == 0
        assert DistanceMetric.ANGULAR.instruction_code == 1
        assert DistanceMetric.INNER_PRODUCT.instruction_code == 2
