"""Arrival processes: determinism, rates, burstiness, trace replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.arrivals import (
    MMPPArrivals,
    PoissonArrivals,
    QueryStream,
    TraceReplayArrivals,
)


class TestDeterminism:
    def test_same_seed_reproduces_stream(self):
        def make():
            return QueryStream(
                PoissonArrivals(300.0),
                pool_size=64,
                n_requests=200,
                zipf_exponent=1.0,
                seed=42,
            ).generate()

        a, b = make(), make()
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]
        assert [r.query_id for r in a] == [r.query_id for r in b]

    def test_different_seed_differs(self):
        def make(seed):
            return QueryStream(
                PoissonArrivals(300.0), pool_size=64, n_requests=50, seed=seed
            ).generate()

        assert [r.arrival_s for r in make(1)] != [r.arrival_s for r in make(2)]

    def test_arrivals_sorted_and_ids_in_pool(self):
        stream = QueryStream(
            MMPPArrivals(500.0), pool_size=32, n_requests=300, seed=5
        )
        requests = stream.generate()
        times = [r.arrival_s for r in requests]
        assert times == sorted(times)
        assert all(0 <= r.query_id < 32 for r in requests)
        assert [r.request_id for r in requests] == list(range(300))


class TestRates:
    def test_poisson_mean_rate(self):
        rng = np.random.default_rng(0)
        gaps = PoissonArrivals(1000.0).interarrival_times(20000, rng)
        assert 1.0 / gaps.mean() == pytest.approx(1000.0, rel=0.05)

    def test_mmpp_long_run_rate_matches(self):
        rng = np.random.default_rng(0)
        gaps = MMPPArrivals(1000.0, burstiness=0.8).interarrival_times(20000, rng)
        assert 1.0 / gaps.mean() == pytest.approx(1000.0, rel=0.15)

    def test_mmpp_is_burstier_than_poisson(self):
        """Coefficient of variation of MMPP gaps must exceed Poisson's ~1."""
        rng = np.random.default_rng(3)
        poisson = PoissonArrivals(1000.0).interarrival_times(20000, rng)
        rng = np.random.default_rng(3)
        mmpp = MMPPArrivals(1000.0, burstiness=0.9).interarrival_times(20000, rng)
        cv_poisson = poisson.std() / poisson.mean()
        cv_mmpp = mmpp.std() / mmpp.mean()
        assert cv_mmpp > cv_poisson * 1.1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError):
            MMPPArrivals(100.0, burstiness=1.0)
        with pytest.raises(ValueError):
            MMPPArrivals(100.0, mean_dwell_s=0.0)


class TestTraceReplay:
    def test_replays_and_cycles(self):
        rng = np.random.default_rng(0)
        replay = TraceReplayArrivals(gaps_s=(0.1, 0.2, 0.3))
        gaps = replay.interarrival_times(7, rng)
        np.testing.assert_allclose(gaps, [0.1, 0.2, 0.3, 0.1, 0.2, 0.3, 0.1])

    def test_rescales_to_target_rate(self):
        rng = np.random.default_rng(0)
        replay = TraceReplayArrivals(gaps_s=(0.1, 0.3), rate_qps=100.0)
        gaps = replay.interarrival_times(1000, rng)
        assert 1.0 / gaps.mean() == pytest.approx(100.0, rel=1e-6)

    def test_from_times(self):
        replay = TraceReplayArrivals.from_times(np.array([0.5, 0.2, 0.9]))
        np.testing.assert_allclose(replay.gaps_s, [0.2, 0.3, 0.4])

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceReplayArrivals(gaps_s=())
