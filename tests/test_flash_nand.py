"""Unit tests for the functional NAND array model."""

import numpy as np
import pytest

from repro.flash.commands import MultiPlaneRestrictionError
from repro.flash.geometry import PhysicalAddress
from repro.flash.nand import FlashChip, Lun, Plane


@pytest.fixture()
def plane(tiny_geometry):
    return Plane(tiny_geometry, lun_index=0, plane_index=0)


class TestPlane:
    def test_program_read_roundtrip(self, plane):
        data = np.arange(64, dtype=np.uint8)
        plane.program(2, 3, data)
        plane.load_page(2, 3)
        assert np.array_equal(plane.read_buffer(0, 64), data)

    def test_unwritten_page_reads_zeros(self, plane):
        plane.load_page(0, 0)
        assert plane.read_buffer(0, 16).sum() == 0

    def test_page_buffer_hit_detection(self, plane):
        plane.program(1, 1, np.ones(8, dtype=np.uint8))
        assert plane.load_page(1, 1) is False  # real sense
        assert plane.load_page(1, 1) is True  # buffered
        assert plane.page_loads == 1
        assert plane.buffer_hits == 1

    def test_loading_other_page_evicts(self, plane):
        plane.load_page(0, 0)
        plane.load_page(0, 1)
        assert plane.load_page(0, 0) is False
        assert plane.page_loads == 3

    def test_column_read_bounds(self, plane):
        plane.load_page(0, 0)
        with pytest.raises(ValueError):
            plane.read_buffer(plane.geometry.page_size - 4, 8)

    def test_read_without_sense_rejected(self, plane):
        with pytest.raises(RuntimeError):
            plane.read_buffer(0, 4)

    def test_program_oversized_rejected(self, plane):
        with pytest.raises(ValueError):
            plane.program(0, 0, np.zeros(plane.geometry.page_size + 1, dtype=np.uint8))

    def test_program_requires_uint8(self, plane):
        with pytest.raises(TypeError):
            plane.program(0, 0, np.zeros(8, dtype=np.float32))

    def test_erase_drops_pages(self, plane):
        plane.program(4, 0, np.ones(8, dtype=np.uint8))
        plane.erase(4)
        plane.load_page(4, 0)
        assert plane.read_buffer(0, 8).sum() == 0

    def test_move_block_preserves_data(self, plane):
        data = np.arange(32, dtype=np.uint8)
        plane.program(1, 5, data)
        moved = plane.move_block(1, 6)
        assert moved == 1
        plane.load_page(6, 5)
        assert np.array_equal(plane.read_buffer(0, 32), data)


class TestLun:
    def test_single_plane_read(self, tiny_geometry):
        lun = Lun(tiny_geometry, lun_index=0)
        data = np.arange(16, dtype=np.uint8)
        lun.planes[1].program(0, 2, data)
        addr = PhysicalAddress(lun=0, plane=1, block=0, page=2)
        assert np.array_equal(lun.read(addr, 16), data)

    def test_read_wrong_lun_rejected(self, tiny_geometry):
        lun = Lun(tiny_geometry, lun_index=0)
        with pytest.raises(ValueError):
            lun.read(PhysicalAddress(lun=1, plane=0, block=0, page=0), 8)

    def test_multi_plane_read(self, tiny_geometry):
        lun = Lun(tiny_geometry, lun_index=0)
        lun.planes[0].program(0, 1, np.full(8, 7, dtype=np.uint8))
        lun.planes[1].program(0, 1, np.full(8, 9, dtype=np.uint8))
        out = lun.multi_plane_read(
            [
                PhysicalAddress(lun=0, plane=0, block=0, page=1),
                PhysicalAddress(lun=0, plane=1, block=0, page=1),
            ],
            8,
        )
        assert out[0][0] == 7
        assert out[1][0] == 9

    def test_multi_plane_restrictions_enforced(self, tiny_geometry):
        lun = Lun(tiny_geometry, lun_index=0)
        with pytest.raises(MultiPlaneRestrictionError):
            lun.multi_plane_read(
                [
                    PhysicalAddress(lun=0, plane=0, block=0, page=1),
                    PhysicalAddress(lun=0, plane=1, block=0, page=2),
                ],
                8,
            )


class TestFlashChip:
    def test_lun_lookup(self, tiny_geometry):
        chip = FlashChip(tiny_geometry, chip_index=1)
        base = tiny_geometry.luns_per_chip
        assert chip.lun(base).lun_index == base

    def test_foreign_lun_rejected(self, tiny_geometry):
        chip = FlashChip(tiny_geometry, chip_index=0)
        with pytest.raises(ValueError):
            chip.lun(tiny_geometry.luns_per_chip)
