"""Tests for the bitonic sorting network and FPGA model."""

import numpy as np
import pytest

from repro.flash.timing import FlashTiming
from repro.sorting import (
    FPGASorter,
    bitonic_comparator_count,
    bitonic_sort,
    bitonic_stage_count,
    bitonic_top_k,
)


class TestNetworkCounts:
    def test_stage_count_formula(self):
        # n = 2^k -> k(k+1)/2 stages.
        assert bitonic_stage_count(2) == 1
        assert bitonic_stage_count(4) == 3
        assert bitonic_stage_count(8) == 6
        assert bitonic_stage_count(1024) == 55

    def test_non_power_of_two_padded(self):
        assert bitonic_stage_count(5) == bitonic_stage_count(8)

    def test_comparator_count(self):
        assert bitonic_comparator_count(8) == 6 * 4
        assert bitonic_comparator_count(1) == 0


class TestBitonicSort:
    def test_sorts_ascending(self, rng):
        keys = rng.normal(size=64)
        out, _ = bitonic_sort(keys)
        assert np.array_equal(out, np.sort(keys))

    def test_sorts_descending(self, rng):
        keys = rng.normal(size=32)
        out, _ = bitonic_sort(keys, descending=True)
        assert np.array_equal(out, np.sort(keys)[::-1])

    def test_non_power_of_two(self, rng):
        keys = rng.normal(size=37)
        out, _ = bitonic_sort(keys)
        assert np.array_equal(out, np.sort(keys))

    def test_payload_follows_keys(self, rng):
        keys = rng.normal(size=50)
        values = np.arange(50)
        out_k, out_v = bitonic_sort(keys, values)
        assert np.array_equal(out_v, np.argsort(keys, kind="stable"))
        assert np.array_equal(out_k, keys[out_v])

    def test_duplicates(self):
        keys = np.array([2.0, 1.0, 2.0, 1.0, 0.0])
        out, _ = bitonic_sort(keys)
        assert np.array_equal(out, np.array([0.0, 1.0, 1.0, 2.0, 2.0]))

    def test_empty_and_singleton(self):
        out, _ = bitonic_sort(np.array([]))
        assert out.size == 0
        out, _ = bitonic_sort(np.array([3.0]))
        assert out.tolist() == [3.0]

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            bitonic_sort(np.zeros((2, 2)))

    def test_top_k(self, rng):
        dists = rng.normal(size=40)
        ids = np.arange(40)
        top_d, top_i = bitonic_top_k(dists, ids, 5)
        ref = np.argsort(dists)[:5]
        assert np.array_equal(top_i, ref)
        assert np.array_equal(top_d, dists[ref])


class TestFPGASorter:
    def test_sort_result_lists_correct(self, rng):
        sorter = FPGASorter(timing=FlashTiming())
        distances = [rng.normal(size=20), rng.normal(size=12)]
        ids = [np.arange(20), np.arange(12)]
        top_d, top_i, latency = sorter.sort_result_lists(distances, ids, k=3)
        assert latency > 0
        for d_in, d_out, i_out in zip(distances, top_d, top_i):
            ref = np.argsort(d_in)[:3]
            assert np.array_equal(i_out, ref)

    def test_counters(self, rng):
        sorter = FPGASorter(timing=FlashTiming())
        sorter.sort_result_lists([rng.normal(size=16)], [np.arange(16)], k=4)
        assert sorter.counters["sorted_elements"] == 16
        assert sorter.counters["comparator_ops"] == bitonic_comparator_count(16)
        assert sorter.counters["private_pcie_bytes"] > 0

    def test_latency_scales_with_elements(self):
        sorter = FPGASorter(timing=FlashTiming())
        small = sorter.sort_latency_s(batch_size=16, list_length=32)
        large = sorter.sort_latency_s(batch_size=256, list_length=32)
        assert large > small

    def test_mismatched_lists_rejected(self, rng):
        sorter = FPGASorter(timing=FlashTiming())
        with pytest.raises(ValueError):
            sorter.sort_result_lists([rng.normal(size=4)], [], k=2)
