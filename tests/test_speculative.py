"""Tests for speculative searching (Section VI-B2)."""

import numpy as np
import pytest

from repro.core.speculative import (
    select_speculative_candidates,
    speculative_hits,
)


class TestSelection:
    def test_returns_second_order_only(self, small_graph):
        first = small_graph.neighbors(0).astype(np.int64)
        candidates = select_speculative_candidates(small_graph, first, 8)
        first_set = set(first.tolist())
        assert all(int(c) not in first_set for c in candidates)

    def test_width_respected(self, small_graph):
        first = small_graph.neighbors(0).astype(np.int64)
        assert select_speculative_candidates(small_graph, first, 3).size <= 3

    def test_ranked_by_connectivity(self, ring_graph):
        # On a ring with first-order {5, 7}, vertex 6 is linked by both
        # and must rank first.
        first = np.array([5, 7])
        candidates = select_speculative_candidates(ring_graph, first, 2)
        assert candidates[0] == 6

    def test_deterministic_tiebreak(self, small_graph):
        first = small_graph.neighbors(1).astype(np.int64)
        a = select_speculative_candidates(small_graph, first, 6)
        b = select_speculative_candidates(small_graph, first, 6)
        assert np.array_equal(a, b)

    def test_zero_width(self, small_graph):
        first = small_graph.neighbors(0).astype(np.int64)
        assert select_speculative_candidates(small_graph, first, 0).size == 0

    def test_empty_first_order(self, small_graph):
        out = select_speculative_candidates(
            small_graph, np.array([], dtype=np.int64), 4
        )
        assert out.size == 0


class TestHits:
    def test_intersection(self):
        hits = speculative_hits(np.array([1, 2, 3]), np.array([2, 3, 4]))
        assert hits.tolist() == [2, 3]

    def test_no_overlap(self):
        assert speculative_hits(np.array([1]), np.array([2])).size == 0

    def test_empty_inputs(self):
        assert speculative_hits(np.array([]), np.array([1])).size == 0
        assert speculative_hits(np.array([1]), np.array([])).size == 0

    def test_hit_rate_reasonable_on_real_graph(self, small_graph):
        """Prefetching the well-connected second ring should sometimes
        cover the next hop — and per the paper, often not (over half
        of speculated results go unused)."""
        rng = np.random.default_rng(0)
        hits = misses = 0
        for v in range(0, small_graph.num_vertices, 10):
            first = small_graph.neighbors(v).astype(np.int64)
            if first.size == 0:
                continue
            spec = select_speculative_candidates(small_graph, first, 8)
            # Next iteration expands the closest first-order neighbor;
            # emulate with a random member.
            nxt = int(first[rng.integers(first.size)])
            actual = small_graph.neighbors(nxt).astype(np.int64)
            overlap = speculative_hits(spec, actual)
            hits += overlap.size
            misses += max(actual.size - overlap.size, 0)
        assert hits > 0
        assert misses > 0
