"""Pinned parity: the event-kernel frontend vs the legacy arrival loop.

PR 5 replaced ``ServingFrontend.run``'s monolithic arrival-ordered loop
(hand-interleaved batcher deadlines, completion retirement and
autoscale epochs) with the discrete-event kernel in
:mod:`repro.sim.events`.  Before the legacy loop was deleted, both
implementations were run over the existing ``bench_serving``
configurations and their :class:`~repro.serving.metrics.ServingReport`
outputs — per-request outcomes, timestamps and results included — were
required to match *bit for bit*.  The digests pinned below are those
legacy-loop outputs; the kernel frontend must keep reproducing them.

The digest covers, per configuration:

* every request's ``(request_id, outcome, batched_s, start_s,
  completion_s)`` tuple plus its result arrays' raw bytes, and
* the full scalar surface of the report (throughput, latency
  percentiles at ``repr`` precision, queue/batch/probe/energy series,
  SLO attainment and scale events).

A digest mismatch means the refactored event loop changed an
observable serving behavior — event ordering, retirement timing,
deadline evaluation — not just an internal detail.

Regenerating (only after an *intentional* semantic change, with the
reasoning recorded in the commit):

    REPRO_WRITE_PARITY=/tmp/parity.json \
        PYTHONPATH=src python -m pytest tests/test_serving_parity.py -q
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import replace

import pytest

from repro.core.config import NDSearchConfig
from repro.serving import (
    AutoscalePolicy,
    BatchPolicy,
    MMPPArrivals,
    PoissonArrivals,
    QueryStream,
    ServingConfig,
    ServingFrontend,
    build_router,
)
from repro.serving.sharding import PARTITIONED

# The bench_serving constants (benchmarks/bench_serving.py): same
# corpus, pool and stream seeds as the sweep the parity was proven on.
CORPUS, DIM, POOL, REQUESTS, K = 800, 16, 128, 400, 10
STREAM_SEED = 33

#: Golden digests recorded from the legacy arrival-ordered loop at the
#: event-kernel refactor boundary.
GOLDEN = {
    "autoscale-overload":
        "3e924674138b5467bb215a88b1ba80fe4ae8cfd4ede541f7b6a38b4a33e3ba2b",
    "batch-x1-hi":
        "bdf190e7eae0a6001c77d46c3270907cf30c4d7737fcd7fbdb982fbff8dd1079",
    "batch-x4-lo":
        "2cdb0631df0ef80298f36108a9ada52cfce8f3c7a99047b26839c5ba116f003d",
    "blocking-x1-bursty":
        "883b991415a099b95fabfa529063ea47afdc5c7b7ce7c370729ea7abcd979d90",
    "coalesce-zipf-bursty":
        "f17c76e30e8d6639d4d28aa93b1ef69bc7c6b0ec3b1cb2442a16c289bee40a4d",
    "cpu-spill-blocking-bursty":
        "c726d8dff2ef9aa6a2c767715ac32a02dce453980fedecf7c37793801a117721",
    "cpu-spill-pipelined-bursty":
        "2a599f870914f6a9f91c9346047fa5b6b178b34693c8419270f183a2fd96fab6",
    "greedy-x1-hi":
        "250bbd66d5ea4a4f8620814f7bc78bad98960f0d009dc46344ebe7baf9fe2fc4",
    "maxwait-deadline-4ms":
        "4b6629b69f3edab623c9cf2a72fb6cbfa629fcd62823be7a8180d62dd2a8b1fa",
    "partitioned-broadcast":
        "841b3307a52e16196ca27eb36aedca0288e86491550974adc309426b6fe00343",
    "partitioned-nprobe1":
        "1c8665e0faee5887a7b727c8403519854a38c34e7ef3c83ff94ba9bc7547dce3",
    "partitioned-nprobe2":
        "12f8c73ad1304b98ebac5f4bf5e150e44694bee8b14e6aad8ca55ad31e607a75",
    "pipelined-x1-bursty":
        "a8f7fe6780daae4f1e21e81bf39378df2426d47cd8a909a085812097ee1c6330",
    "slo-deadline-4ms":
        "639af8a2bc05e6647e7717fa6d6ff48c7b6c0b735d4a562502b0c7507b86c5da",
    "static-overload":
        "b53dc2564986f86c5c08d062dd55d272dd6deb1420633846517f12394e325b3e",
}


def _stream(arrivals, zipf=0.0, priorities=(0,), weights=None, slo=None):
    return QueryStream(
        arrivals,
        pool_size=POOL,
        n_requests=REQUESTS,
        k=K,
        zipf_exponent=zipf,
        seed=STREAM_SEED,
        priorities=priorities,
        priority_weights=weights,
        slo_s=slo,
    ).generate()


def _digest(report, requests) -> str:
    h = hashlib.sha256()
    for r in requests:
        h.update(
            repr(
                (r.request_id, r.outcome, r.batched_s, r.start_s,
                 r.completion_s)
            ).encode()
        )
        if r.result_ids is not None:
            h.update(r.result_ids.tobytes())
            h.update(r.result_dists.tobytes())
    fields = (
        report.offered, report.completed, report.cache_hits,
        report.coalesced, report.shed, report.horizon_s, report.qps,
        report.latency_p50_s, report.latency_p95_s, report.latency_p99_s,
        report.latency_mean_s, report.mean_batch_size,
        report.timeout_close_fraction, report.cache_hit_rate,
        report.shed_rate, report.mean_queue_depth, report.max_queue_depth,
        report.shard_utilization, report.energy_j,
        report.shard_probe_counts, report.mean_probes_per_query,
        report.deadline_total, report.deadline_misses,
        report.deadline_miss_rate, report.goodput_qps,
        sorted(report.priority_stats.items()),
        report.scale_events, report.replicas_final,
    )
    h.update(repr(fields).encode())
    return h.hexdigest()


@pytest.fixture(scope="module")
def corpus_and_pool():
    from repro.data.synthetic import clustered_gaussian, split_queries

    vectors = clustered_gaussian(CORPUS, DIM, seed=31)
    pool = split_queries(vectors, POOL, seed=32)
    return vectors, pool


@pytest.fixture(scope="module")
def routers(corpus_and_pool):
    vectors, _ = corpus_and_pool
    config = NDSearchConfig.scaled()
    spill = replace(
        config, host=replace(config.host, dram_capacity_bytes=16 * 1024)
    )
    return {
        "x1": build_router(vectors, num_shards=1, config=config),
        "x4": build_router(vectors, num_shards=4, config=config),
        "part4": build_router(
            vectors, num_shards=4, config=config, mode=PARTITIONED, seed=35
        ),
        "cpu2": build_router(
            vectors, num_shards=2, config=spill, platform="cpu"
        ),
    }


_SLO_SPEC = {1: 4e-3, 0: 16e-3}
_SLO_KWARGS = dict(
    priorities=(0, 1), weights=(0.75, 0.25), slo=_SLO_SPEC
)


def _run_case(
    name, routers, pool, tracer=None, metrics_window_s=None,
    build_only=False,
):
    """Build and run one pinned configuration; returns (report, requests).

    ``tracer`` / ``metrics_window_s`` attach the :mod:`repro.obs`
    instrumentation — which must never change a digest (the hooks are
    observe-only; that is the invariant the traced parametrization of
    the parity test proves).

    ``build_only`` returns ``(frontend, requests)`` without running —
    the snapshot/restore parity suite (``test_serving_twin``) drives
    the same pinned configurations through the streaming session API
    and must hit the same digests.
    """

    def _frontend(router, policy, **config_kwargs):
        config_kwargs.setdefault("cache_capacity", 0)
        config_kwargs.setdefault("coalesce", False)
        config_kwargs.setdefault("metrics_window_s", metrics_window_s)
        return ServingFrontend(
            router, ServingConfig(policy=policy, **config_kwargs),
            tracer=tracer,
        )

    batch = BatchPolicy(max_batch_size=32, max_wait_s=2e-3)
    if name == "batch-x1-hi":
        requests = _stream(PoissonArrivals(20000.0))
        frontend = _frontend(routers["x1"], batch)
    elif name == "greedy-x1-hi":
        requests = _stream(PoissonArrivals(20000.0))
        frontend = _frontend(
            routers["x1"],
            BatchPolicy(max_batch_size=32, max_wait_s=2e-3, mode="greedy"),
        )
    elif name == "batch-x4-lo":
        requests = _stream(PoissonArrivals(500.0))
        frontend = _frontend(routers["x4"], batch)
    elif name == "pipelined-x1-bursty":
        requests = _stream(MMPPArrivals(40000.0))
        frontend = _frontend(routers["x1"], batch)
    elif name == "blocking-x1-bursty":
        requests = _stream(MMPPArrivals(40000.0))
        frontend = _frontend(routers["x1"], batch, pipelined=False)
    elif name == "cpu-spill-pipelined-bursty":
        requests = _stream(MMPPArrivals(10000.0))
        frontend = _frontend(routers["cpu2"], batch)
    elif name == "cpu-spill-blocking-bursty":
        requests = _stream(MMPPArrivals(10000.0))
        frontend = _frontend(routers["cpu2"], batch, pipelined=False)
    elif name == "partitioned-broadcast":
        requests = _stream(PoissonArrivals(2000.0))
        frontend = _frontend(routers["part4"], batch)
    elif name == "partitioned-nprobe1":
        requests = _stream(PoissonArrivals(2000.0))
        frontend = _frontend(routers["part4"], batch, nprobe=1)
    elif name == "partitioned-nprobe2":
        requests = _stream(PoissonArrivals(2000.0))
        frontend = _frontend(routers["part4"], batch, nprobe=2)
    elif name == "coalesce-zipf-bursty":
        requests = _stream(MMPPArrivals(20000.0), zipf=1.1)
        frontend = _frontend(routers["x1"], batch, coalesce=True)
    elif name == "slo-deadline-4ms":
        requests = _stream(PoissonArrivals(4000.0), **_SLO_KWARGS)
        frontend = _frontend(
            routers["x1"],
            BatchPolicy(
                max_batch_size=32, max_wait_s=20e-3, mode="slo",
                slo_margin_s=3e-4,
            ),
        )
    elif name == "maxwait-deadline-4ms":
        requests = _stream(PoissonArrivals(4000.0), **_SLO_KWARGS)
        frontend = _frontend(
            routers["x1"], BatchPolicy(max_batch_size=32, max_wait_s=20e-3)
        )
    elif name == "static-overload":
        requests = _stream(PoissonArrivals(25000.0))
        frontend = _frontend(
            routers["overload"],
            BatchPolicy(max_batch_size=4, max_wait_s=2e-3),
            admission_capacity=48,
        )
    elif name == "autoscale-overload":
        requests = _stream(PoissonArrivals(25000.0))
        frontend = _frontend(
            routers["overload"],
            BatchPolicy(max_batch_size=4, max_wait_s=2e-3),
            admission_capacity=48,
            autoscale=AutoscalePolicy(
                min_replicas=1, max_replicas=4, interval_s=2e-3,
                high_utilization=0.7, high_queue_depth=8.0,
            ),
        )
    else:  # pragma: no cover - config table typo
        raise KeyError(name)
    if build_only:
        return frontend, requests
    report = frontend.run(requests, pool)
    return report, requests


CASES = (
    "batch-x1-hi",
    "greedy-x1-hi",
    "batch-x4-lo",
    "pipelined-x1-bursty",
    "blocking-x1-bursty",
    "cpu-spill-pipelined-bursty",
    "cpu-spill-blocking-bursty",
    "partitioned-broadcast",
    "partitioned-nprobe1",
    "partitioned-nprobe2",
    "coalesce-zipf-bursty",
    "slo-deadline-4ms",
    "maxwait-deadline-4ms",
    "static-overload",
    "autoscale-overload",
)

_WRITE_PATH = os.environ.get("REPRO_WRITE_PARITY")
_WRITTEN: dict[str, str] = {}


@pytest.fixture(scope="module")
def case_routers(routers, corpus_and_pool):
    # The overload cells run a dedicated single replica so autoscaling
    # cannot leak grown replicas into the shared x1 router.
    vectors, _ = corpus_and_pool
    out = dict(routers)
    out["overload"] = None  # built lazily per case below
    return out


@pytest.mark.parametrize("traced", (False, True), ids=("plain", "traced"))
@pytest.mark.parametrize("name", CASES)
def test_event_kernel_reproduces_legacy_loop(
    name, traced, case_routers, corpus_and_pool
):
    vectors, pool = corpus_and_pool
    routers = dict(case_routers)
    if name in ("static-overload", "autoscale-overload"):
        # Fresh pool: autoscaling mutates the router (add/remove
        # replicas), so these cells never share a router.
        routers["overload"] = build_router(
            vectors, num_shards=1, config=NDSearchConfig.scaled()
        )
    # The traced leg attaches the full repro.obs instrumentation (span
    # tracer + windowed metrics) and must reproduce the same pinned
    # digests: observability is observe-only by construction, and this
    # is where that construction is held to account.
    tracer = None
    if traced:
        from repro.obs import SpanTracer

        tracer = SpanTracer()
    report, requests = _run_case(
        name, routers, pool,
        tracer=tracer,
        metrics_window_s=1e-3 if traced else None,
    )
    got = _digest(report, requests)
    if traced:
        assert len(tracer) > 0, "traced run recorded no span events"
        assert report.timeseries is not None
        assert report.counters["loop_events_total"] > 0
    if _WRITE_PATH:
        if traced:
            return  # the plain leg records the digests
        _WRITTEN[name] = got
        with open(_WRITE_PATH, "w") as fh:
            json.dump(_WRITTEN, fh, indent=2, sort_keys=True)
        return
    assert got == GOLDEN[name], (
        f"serving behavior diverged from the pinned legacy-loop report "
        f"for {name!r}"
        + (" with repro.obs instrumentation attached" if traced else "")
    )
