"""Tests for the HNSW implementation."""

import numpy as np
import pytest

from repro.ann import BruteForceIndex, HNSWIndex, HNSWParams, recall_at_k
from repro.ann.trace import TraceRecorder


class TestParams:
    def test_defaults_valid(self):
        p = HNSWParams()
        assert p.max_degree0 == 2 * p.M
        assert p.level_multiplier == pytest.approx(1.0 / np.log(p.M))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HNSWParams(M=1)
        with pytest.raises(ValueError):
            HNSWParams(M=16, ef_construction=8)


class TestConstruction:
    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            HNSWIndex(np.zeros((0, 4), dtype=np.float32))

    def test_all_vertices_in_base_layer(self, small_hnsw, small_vectors):
        assert len(small_hnsw.layers[0]) == small_vectors.shape[0]

    def test_layer_sizes_decrease(self, small_hnsw):
        sizes = [len(layer) for layer in small_hnsw.layers]
        assert sizes == sorted(sizes, reverse=True)

    def test_entry_point_on_top_layer(self, small_hnsw):
        top = small_hnsw.num_layers - 1
        assert small_hnsw.entry_point in small_hnsw.layers[top]

    def test_degree_caps_respected(self, small_hnsw):
        p = small_hnsw.params
        for layer_idx, layer in enumerate(small_hnsw.layers):
            cap = p.max_degree0 if layer_idx == 0 else p.max_degree
            for neighbors in layer.values():
                assert len(neighbors) <= cap

    def test_base_graph_connected(self, small_graph):
        assert small_graph.is_connected()

    def test_memory_per_vertex_in_paper_range(self, small_hnsw):
        # Paper Section I: 60-450 bytes per vertex for HNSW.
        per_vertex = small_hnsw.memory_per_vertex_bytes()
        assert 60 <= per_vertex <= 450


class TestSearch:
    def test_recall_against_bruteforce(self, small_vectors, small_queries):
        index = HNSWIndex(small_vectors, HNSWParams(M=8, ef_construction=48))
        bf = BruteForceIndex(small_vectors)
        gt, _ = bf.search_batch(small_queries, 5)
        ids, _, _ = index.search_batch(small_queries, 5, ef=48)
        assert recall_at_k(ids, gt) >= 0.9

    def test_exact_match_found(self, small_hnsw, small_vectors):
        ids, dists = small_hnsw.search(small_vectors[17], k=1, ef=32)
        assert ids[0] == 17
        assert dists[0] == pytest.approx(0.0, abs=1e-5)

    def test_distances_ascending(self, small_hnsw, small_queries):
        _, dists = small_hnsw.search(small_queries[0], k=8, ef=32)
        assert list(dists) == sorted(dists)

    def test_ef_must_cover_k(self, small_hnsw, small_queries):
        with pytest.raises(ValueError):
            small_hnsw.search(small_queries[0], k=10, ef=5)

    def test_trace_recorded(self, small_hnsw, small_queries):
        rec = TraceRecorder(0)
        ids, _ = small_hnsw.search(small_queries[0], k=5, ef=24, recorder=rec)
        trace = rec.finish()
        assert trace.trace_length > 0
        assert np.array_equal(trace.result_ids, ids)

    def test_search_batch_shapes(self, small_hnsw, small_queries):
        ids, dists, traces = small_hnsw.search_batch(small_queries, 5, ef=24)
        assert ids.shape == (len(small_queries), 5)
        assert dists.shape == (len(small_queries), 5)
        assert len(traces) == len(small_queries)

    def test_deterministic_given_seed(self, small_vectors, small_queries):
        a = HNSWIndex(small_vectors, HNSWParams(M=6, ef_construction=24, seed=5))
        b = HNSWIndex(small_vectors, HNSWParams(M=6, ef_construction=24, seed=5))
        ia, _, _ = a.search_batch(small_queries[:4], 5)
        ib, _, _ = b.search_batch(small_queries[:4], 5)
        assert np.array_equal(ia, ib)

    def test_plain_selection_mode(self, small_vectors, small_queries):
        index = HNSWIndex(
            small_vectors,
            HNSWParams(M=8, ef_construction=32, use_heuristic=False),
        )
        bf = BruteForceIndex(small_vectors)
        gt, _ = bf.search_batch(small_queries, 5)
        ids, _, _ = index.search_batch(small_queries, 5, ef=48)
        assert recall_at_k(ids, gt) >= 0.8


def _adversarial_cloud(n: int, dim: int, seed: int) -> np.ndarray:
    """The PR 2 property-test cloud family (4 Gaussian clusters)."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(4, dim))
    assign = rng.integers(0, 4, size=n)
    return (centers[assign] + 0.4 * rng.normal(size=(n, dim))).astype(
        np.float32
    )


class TestSelfRecallRegression:
    """Clouds where the pre-fix single-entry beam missed a stored vector.

    Each case was found by randomized property testing (PR 2 and the
    PR 3 stress runs): ``search(vectors[probe], k=1, ef=8)`` returned a
    non-zero distance.  The fix — maximin restart pivots, the
    nearest-neighbor in-link pass and the ef floor — must keep all of
    them self-retrievable.
    """

    CASES = [  # (n, dim, cloud seed == index seed, probe vertex)
        (72, 7, 619379841, 57),
        (118, 11, 496254106, 32),
        (100, 7, 2141063300, 0),
        (119, 5, 1304948310, 22),
        (91, 9, 274008642, 89),
        (107, 10, 765335761, 71),
        (115, 12, 1618076485, 35),
        (99, 12, 1872236628, 9),
        (110, 4, 485126279, 99),
        (74, 4, 410274922, 52),
        (94, 11, 1605792215, 85),
        (108, 12, 565771716, 0),   # probe had no in-path from the entry
        (108, 8, 1900992776, 104),  # nearest in-link pruned by shrink
    ]

    @pytest.mark.parametrize("n,dim,seed,probe", CASES)
    def test_stored_vector_self_retrievable(self, n, dim, seed, probe):
        vectors = _adversarial_cloud(n, dim, seed)
        index = HNSWIndex(vectors, HNSWParams(M=4, ef_construction=12, seed=seed))
        ids, dists = index.search(vectors[probe], k=1, ef=8)
        assert ids[0] == probe
        assert dists[0] == pytest.approx(0.0, abs=1e-4)

    def test_every_vertex_reachable_from_seeds(self):
        """The build-time repair: BFS from entry + pivots spans layer 0."""
        vectors = _adversarial_cloud(108, 12, 565771716)
        index = HNSWIndex(vectors, HNSWParams(M=4, ef_construction=12,
                                              seed=565771716))
        adj = index.layers[0]
        seen = {index.entry_point, *index._pivots}
        stack = list(seen)
        while stack:
            for w in adj.get(stack.pop(), ()):
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        assert len(seen) == vectors.shape[0]
