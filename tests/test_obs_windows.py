"""Windowed metrics registry: event-time windows, dense series."""

from __future__ import annotations

import json

import pytest

from repro.obs import WindowedMetrics


class TestInstruments:
    def test_counter_bins_by_event_time(self):
        m = WindowedMetrics(1.0)
        m.inc("arrivals", 0.1)
        m.inc("arrivals", 0.9)
        m.inc("arrivals", 2.5)
        windows = m.series()["windows"]
        assert [w["counters"]["arrivals"] for w in windows] == [2.0, 0.0, 1.0]

    def test_counter_custom_increment(self):
        m = WindowedMetrics(1.0)
        m.inc("bytes", 0.5, 100.0)
        m.inc("bytes", 0.6, 50.0)
        (window,) = m.series()["windows"]
        assert window["counters"]["bytes"] == 150.0

    def test_gauge_reduces_to_mean_max(self):
        m = WindowedMetrics(1.0)
        for value in (1.0, 3.0, 5.0):
            m.sample("depth", 0.5, value)
        (window,) = m.series()["windows"]
        gauge = window["gauges"]["depth"]
        assert gauge == {"mean": 3.0, "max": 5.0, "count": 3.0}

    def test_histogram_percentiles(self):
        m = WindowedMetrics(1.0)
        for value in range(1, 101):
            m.observe("latency", 0.5, float(value))
        (window,) = m.series()["windows"]
        hist = window["histograms"]["latency"]
        assert hist["count"] == 100
        assert hist["mean"] == pytest.approx(50.5)
        assert hist["p50"] == pytest.approx(50.5)
        assert hist["p99"] == pytest.approx(99.01)
        assert hist["max"] == 100.0

    def test_interval_apportioned_across_windows(self):
        m = WindowedMetrics(1.0)
        m.add_interval("shard0", 0.5, 2.25)
        windows = m.series()["windows"]
        assert [w["busy_s"]["shard0"] for w in windows] == pytest.approx(
            [0.5, 1.0, 0.25]
        )
        assert [w["utilization"]["shard0"] for w in windows] == pytest.approx(
            [0.5, 1.0, 0.25]
        )

    def test_interval_total_is_preserved(self):
        m = WindowedMetrics(0.3)
        m.add_interval("d", 0.05, 2.71)
        total = sum(w["busy_s"]["d"] for w in m.series()["windows"])
        assert total == pytest.approx(2.66)

    def test_empty_interval_ignored(self):
        m = WindowedMetrics(1.0)
        m.add_interval("d", 1.0, 1.0)
        assert m.series()["windows"] == []


class TestValidation:
    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            WindowedMetrics(0.0)
        with pytest.raises(ValueError):
            WindowedMetrics(float("nan"))

    def test_rejects_negative_time(self):
        m = WindowedMetrics(1.0)
        with pytest.raises(ValueError):
            m.inc("x", -0.1)

    def test_rejects_backwards_interval(self):
        m = WindowedMetrics(1.0)
        with pytest.raises(ValueError):
            m.add_interval("d", 2.0, 1.0)


class TestSeries:
    def test_empty_registry(self):
        assert WindowedMetrics(1.0).series() == {
            "window_s": 1.0,
            "windows": [],
        }

    def test_dense_between_first_and_last_window(self):
        m = WindowedMetrics(1.0)
        m.inc("a", 0.5)
        m.inc("a", 4.5)
        windows = m.series()["windows"]
        assert [w["index"] for w in windows] == [0, 1, 2, 3, 4]
        assert windows[2]["counters"]["a"] == 0.0
        assert windows[2]["gauges"] == {}
        assert windows[1]["start_s"] == 1.0
        assert windows[1]["end_s"] == 2.0

    def test_series_is_json_safe(self):
        m = WindowedMetrics(0.5)
        m.inc("arrivals", 0.1)
        m.sample("depth", 0.2, 4.0)
        m.observe("latency", 0.3, 1e-3)
        m.add_interval("shard0", 0.0, 0.4)
        payload = json.dumps(m.series())
        assert json.loads(payload)["window_s"] == 0.5

    def test_mixed_instruments_share_the_span(self):
        m = WindowedMetrics(1.0)
        m.observe("latency", 0.5, 1.0)   # window 0
        m.add_interval("d", 3.0, 3.5)    # window 3
        windows = m.series()["windows"]
        assert [w["index"] for w in windows] == [0, 1, 2, 3]
