"""The unified platform layer: registry, one interface, timeline contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro import platform as platform_api
from repro.core import NDSearch, NDSearchConfig
from repro.serving.backends import dataset_profile

ALL_PLATFORMS = ("cpu", "cpu-t", "gpu", "smartssd", "ds-c", "ds-cp", "ndsearch")


@pytest.fixture(scope="module")
def config():
    return NDSearchConfig.scaled()


@pytest.fixture(scope="module")
def traces(small_hnsw, small_queries):
    _, _, traces = small_hnsw.search_batch(small_queries, 5)
    return traces


@pytest.fixture(scope="module")
def profile(small_vectors, small_hnsw):
    return dataset_profile(small_vectors, small_hnsw)


class TestRegistry:
    def test_available_covers_all_platforms(self):
        assert set(ALL_PLATFORMS) <= set(platform_api.available())

    @pytest.mark.parametrize("name", ALL_PLATFORMS)
    def test_every_platform_constructs_and_simulates(
        self, name, config, small_hnsw, traces, profile
    ):
        model = platform_api.get(name, config, index=small_hnsw)
        assert model.name == name
        result = model.simulate(traces, profile, algorithm="hnsw")
        assert result.platform == name
        assert result.sim_time_s > 0
        assert result.batch_size == len(traces)

    def test_alias_resolves(self, config, small_hnsw):
        model = platform_api.get("deepstore", config, index=small_hnsw)
        assert model.name == "ds-cp"

    def test_unknown_platform_raises_with_choices(self, config):
        with pytest.raises(ValueError, match="ndsearch"):
            platform_api.get("tpu", config)

    def test_in_storage_platforms_need_context(self, config):
        with pytest.raises(ValueError, match="index"):
            platform_api.get("ndsearch", config)

    def test_prebuilt_system_is_reused(self, config, small_hnsw):
        system = NDSearch(index=small_hnsw, config=config)
        model = platform_api.get("ndsearch", config, system=system)
        assert model.system is system
        ds = platform_api.get("ds-c", config, system=system)
        assert ds.system is system

    def test_register_adds_new_platform(self, config):
        @platform_api.register("test-dummy")
        def _build(cfg, **_):
            return platform_api.get("cpu", cfg)

        try:
            assert "test-dummy" in platform_api.available()
            model = platform_api.get("test-dummy", config)
            assert model.name == "cpu"
        finally:
            from repro.platform import registry

            del registry._REGISTRY["test-dummy"]


class TestTimelineContract:
    @pytest.mark.parametrize("name", ALL_PLATFORMS)
    def test_timeline_valid_and_covers_makespan(
        self, name, config, small_hnsw, traces, profile
    ):
        model = platform_api.get(name, config, index=small_hnsw)
        result = model.simulate(traces, profile)
        assert result.timeline, f"{name} emitted no phase timeline"
        result.validate_timeline()  # monotone, in-bounds, no overlap
        # The stage chain reproduces the batch makespan exactly: an
        # unloaded pipelined device must serve at sim_time_s latency.
        stages = result.pipeline_stages()
        assert all(duration >= 0 for _, duration in stages)
        total = sum(duration for _, duration in stages)
        assert total == pytest.approx(result.sim_time_s, rel=1e-9)

    @pytest.mark.parametrize("name", ALL_PLATFORMS)
    def test_per_resource_segments_are_monotone(
        self, name, config, small_hnsw, traces, profile
    ):
        model = platform_api.get(name, config, index=small_hnsw)
        result = model.simulate(traces, profile)
        by_resource: dict[str, list] = {}
        starts = [seg.start for seg in result.timeline]
        assert starts == sorted(starts)
        for seg in result.timeline:
            assert seg.end >= seg.start
            by_resource.setdefault(seg.resource, []).append(seg)
        for resource, segs in by_resource.items():
            for prev, cur in zip(segs, segs[1:]):
                assert cur.start >= prev.end - 1e-15, (
                    f"{name}:{resource} segments overlap"
                )

    def test_empty_timeline_falls_back_to_opaque_device(self):
        from repro.sim.stats import SimResult

        result = SimResult("cpu", "hnsw", "synthetic", 4, 1.5)
        assert result.pipeline_stages() == [("device", 1.5)]
        result.validate_timeline()

    def test_validate_rejects_double_booking(self):
        from repro.sim.stats import PhaseSegment, SimResult

        result = SimResult(
            "cpu", "hnsw", "synthetic", 4, 1.0,
            timeline=[
                PhaseSegment("a", 0.0, 0.6, resource="engine"),
                PhaseSegment("b", 0.4, 0.9, resource="engine"),
            ],
        )
        with pytest.raises(ValueError, match="double-booked"):
            result.validate_timeline()

    def test_validate_rejects_out_of_bounds(self):
        from repro.sim.stats import PhaseSegment, SimResult

        result = SimResult(
            "cpu", "hnsw", "synthetic", 4, 1.0,
            timeline=[PhaseSegment("a", 0.5, 1.5, resource="engine")],
        )
        with pytest.raises(ValueError, match="outside"):
            result.validate_timeline()


class TestExperimentsIntegration:
    def test_run_platform_goes_through_registry(self):
        """`experiments.common.run_platform` has no per-platform branches."""
        import inspect

        from repro.experiments import common

        source = inspect.getsource(common._run_platform_uncached)
        assert "platform_registry.get" in source
        assert "CPUModel" not in source
