"""Tests for the LUNCSR graph format (paper Fig. 5b, Fig. 6)."""

import numpy as np
import pytest

from repro.core.luncsr import LUNCSR, padded_layout_waste, padding_overhead
from repro.core.placement import map_vertices
from repro.flash.ftl import FlashTranslationLayer


@pytest.fixture()
def luncsr(small_graph, tiny_geometry):
    vector_bytes = small_graph.dim * 4
    placement = map_vertices(
        small_graph.num_vertices, tiny_geometry, vector_bytes
    )
    return LUNCSR.build(small_graph, placement, vector_bytes)


class TestIndexing:
    def test_neighbors_match_graph(self, luncsr, small_graph):
        for v in range(0, small_graph.num_vertices, 17):
            assert np.array_equal(luncsr.neighbors_of(v), small_graph.neighbors(v))

    def test_fig5b_indexing_trace(self, luncsr):
        """Vertex -> offset -> neighbor IDs -> LUN IDs -> addresses."""
        neigh, luns, addresses = luncsr.neighbor_placements(2)
        assert len(addresses) == neigh.size == luns.size
        for u, lun, addr in zip(neigh, luns, addresses):
            assert addr.lun == lun == luncsr.lun_of(int(u))

    def test_physical_address_fields(self, luncsr, tiny_geometry):
        addr = luncsr.physical_address(5)
        tiny_geometry.validate(addr)
        assert addr.byte == luncsr.slot[5] * luncsr.vector_bytes

    def test_build_rejects_mismatched_placement(self, small_graph, tiny_geometry):
        placement = map_vertices(10, tiny_geometry, 64)
        with pytest.raises(ValueError):
            LUNCSR.build(small_graph, placement, 64)


class TestRefreshMirror:
    def test_refresh_updates_blk_array(self, luncsr, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry)
        luncsr.attach_to_ftl(ftl)
        # Pick a (lun, plane, block) that actually holds vertices.
        v = 0
        lun, plane, block = (
            int(luncsr.lun[v]), int(luncsr.plane[v]), int(luncsr.blk[v])
        )
        event = ftl.refresh_block(lun, plane, block)
        assert luncsr.blk[v] == event.new_block
        assert luncsr.refresh_updates == 1

    def test_refresh_only_moves_affected_vertices(self, luncsr, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry)
        luncsr.attach_to_ftl(ftl)
        v = 0
        lun, plane, block = (
            int(luncsr.lun[v]), int(luncsr.plane[v]), int(luncsr.blk[v])
        )
        before = luncsr.blk.copy()
        mask = (
            (luncsr.lun == lun) & (luncsr.plane == plane) & (luncsr.blk == block)
        )
        ftl.refresh_block(lun, plane, block)
        assert np.array_equal(luncsr.blk[~mask], before[~mask])

    def test_page_and_slot_refresh_invariant(self, luncsr, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry)
        luncsr.attach_to_ftl(ftl)
        page_before = luncsr.page.copy()
        slot_before = luncsr.slot.copy()
        ftl.refresh_random_blocks(20)
        assert np.array_equal(luncsr.page, page_before)
        assert np.array_equal(luncsr.slot, slot_before)

    def test_consecutive_refreshes_tracked(self, luncsr, tiny_geometry):
        ftl = FlashTranslationLayer(tiny_geometry)
        luncsr.attach_to_ftl(ftl)
        v = 7
        # The FTL refreshes by *logical* block; initially logical ==
        # physical, and the logical ID never changes across refreshes.
        lun, plane = int(luncsr.lun[v]), int(luncsr.plane[v])
        logical = int(luncsr.blk[v])
        for _ in range(3):
            event = ftl.refresh_block(lun, plane, logical)
            # LUNCSR's BLK array follows the physical relocation.
            assert int(luncsr.blk[v]) == event.new_block
        assert luncsr.physical_address(v).block == int(luncsr.blk[v])
        assert luncsr.refresh_updates == 3


class TestFootprint:
    def test_index_bytes_positive(self, luncsr):
        assert luncsr.index_bytes() > 0

    def test_index_fits_paper_dram(self, luncsr):
        # LUNCSR arrays must fit the 4 GB internal DRAM by a wide margin
        # at test scale.
        assert luncsr.index_bytes() < 4 * 1024**3


class TestFig6Layout:
    def test_paper_headline_number(self):
        """128 B vector + 32 x 4 B IDs in a 4 KB page -> 46.9% waste."""
        waste = padded_layout_waste(
            dim=32, vector_itemsize=4, max_neighbors=32, page_size=4096
        )
        assert waste == pytest.approx(0.469, abs=0.001)

    def test_waste_grows_with_density(self):
        sparse = padded_layout_waste(128, 4, 32, 16 * 1024)
        dense = padded_layout_waste(16, 4, 32, 16 * 1024)
        assert dense > sparse

    def test_single_slice_page_has_no_cross_waste(self):
        assert padded_layout_waste(900, 4, 32, 4096) == 0.0

    def test_oversized_slice_rejected(self):
        with pytest.raises(ValueError):
            padded_layout_waste(2000, 4, 32, 4096)

    def test_padding_overhead(self):
        # R=32 slots, mean degree 20 -> 48 wasted bytes per 256 B slice.
        waste = padding_overhead(
            dim=32, vector_itemsize=4, max_neighbors=32, mean_degree=20
        )
        assert waste == pytest.approx(48 / 256)

    def test_padding_overhead_validation(self):
        with pytest.raises(ValueError):
            padding_overhead(32, 4, 32, mean_degree=40)
