"""Tests for reordering and the beta bandwidth metric (Section VI-A)."""

import numpy as np
import pytest

from repro.core.static_scheduling import (
    bandwidth_beta,
    degree_ascending_bfs,
    figure10_example_graph,
    random_bfs,
)


class TestBeta:
    def test_ring_identity_beta(self, ring_graph):
        # On a ring labeled in order, every vertex's worst neighbor gap
        # is 1 except the two endpoints seeing the wrap edge (n-1).
        n = ring_graph.num_vertices
        beta = bandwidth_beta(ring_graph)
        expected = ((n - 2) * 1 + 2 * (n - 1)) / n
        assert beta == pytest.approx(expected)

    def test_beta_permutation_invariance_of_identity(self, ring_graph):
        order = np.arange(ring_graph.num_vertices)
        assert bandwidth_beta(ring_graph, order) == bandwidth_beta(ring_graph)

    def test_bad_order_raises_beta(self, ring_graph, rng):
        shuffled = rng.permutation(ring_graph.num_vertices)
        assert bandwidth_beta(ring_graph, shuffled) > bandwidth_beta(ring_graph)

    def test_non_permutation_rejected(self, ring_graph):
        with pytest.raises(ValueError):
            bandwidth_beta(ring_graph, np.zeros(ring_graph.num_vertices, dtype=int))

    def test_empty_graph(self):
        from repro.ann.graph import ProximityGraph

        g = ProximityGraph(
            np.zeros((0, 2), dtype=np.float32),
            np.zeros(1, dtype=np.int64),
            np.zeros(0, dtype=np.int32),
        )
        assert bandwidth_beta(g) == 0.0


class TestDegreeAscendingBFS:
    def test_order_is_permutation(self, small_graph):
        order = degree_ascending_bfs(small_graph)
        assert sorted(order.tolist()) == list(range(small_graph.num_vertices))

    def test_deterministic(self, small_graph):
        a = degree_ascending_bfs(small_graph)
        b = degree_ascending_bfs(small_graph)
        assert np.array_equal(a, b)

    def test_root_has_minimum_degree(self, small_graph):
        order = degree_ascending_bfs(small_graph)
        # Use the same symmetrised degrees the implementation sees.
        und = small_graph.undirected()
        degrees = und.degrees
        assert degrees[order[0]] == degrees.min()

    def test_reduces_beta_vs_random_labeling(self, small_graph, rng):
        ours = bandwidth_beta(small_graph, degree_ascending_bfs(small_graph))
        random_label = bandwidth_beta(
            small_graph, rng.permutation(small_graph.num_vertices)
        )
        assert ours < random_label

    def test_handles_disconnected_graph(self):
        from repro.ann.graph import ProximityGraph

        vectors = np.zeros((6, 2), dtype=np.float32)
        g = ProximityGraph.from_adjacency(
            vectors, [[1], [0], [3], [2], [5], [4]]
        )
        order = degree_ascending_bfs(g)
        assert sorted(order.tolist()) == list(range(6))

    def test_bfs_property_neighbors_near(self, ring_graph):
        # On a ring, BFS from any root yields beta ~2 (each vertex's
        # neighbors are at most 2 labels away except near the seam).
        order = degree_ascending_bfs(ring_graph)
        beta = bandwidth_beta(ring_graph, order)
        assert beta <= 3.0


class TestRandomBFS:
    def test_order_is_permutation(self, small_graph):
        order = random_bfs(small_graph, seed=3)
        assert sorted(order.tolist()) == list(range(small_graph.num_vertices))

    def test_seeds_differ(self, small_graph):
        a = random_bfs(small_graph, seed=1)
        b = random_bfs(small_graph, seed=2)
        assert not np.array_equal(a, b)

    def test_randomness_needs_retries_ours_does_not(self, small_graph):
        """The paper's Fig. 10 point: random BFS quality varies run to
        run; the deterministic method lands at or below the random
        method's average in one shot."""
        ours = bandwidth_beta(small_graph, degree_ascending_bfs(small_graph))
        randoms = [
            bandwidth_beta(small_graph, random_bfs(small_graph, seed=s))
            for s in range(5)
        ]
        assert ours <= np.mean(randoms)


class TestFigure10Example:
    def test_example_graph_shape(self):
        g = figure10_example_graph()
        assert g.num_vertices == 8

    def test_ours_beats_original_and_random(self):
        g = figure10_example_graph()
        original = bandwidth_beta(g)
        ours = bandwidth_beta(g, degree_ascending_bfs(g))
        randoms = [bandwidth_beta(g, random_bfs(g, seed=s)) for s in range(8)]
        assert ours < original
        assert ours <= min(np.mean(randoms), original)
