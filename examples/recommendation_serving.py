"""Recommendation serving: item retrieval under inner-product distance.

The paper's second motivating workload: a recommender's retrieve stage
pulls a fixed number of candidate items per user before ranking.  Item
embedding stores at production scale live on SSD; the retrieve stage's
latency budget is tight and batch sizes are large.  This example runs
the two-stage pipeline (retrieve via NDSearch, rank on the host) and
shows how batch size moves the throughput (the Fig. 19 effect).

Run:  python examples/recommendation_serving.py
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.ann import HNSWIndex, HNSWParams
from repro.ann.distance import DistanceMetric
from repro.core import NDSearch, NDSearchConfig
from repro.data.synthetic import clustered_gaussian


def main() -> None:
    rng = np.random.default_rng(21)
    # Item tower embeddings; user tower queries arrive in batches.
    items = clustered_gaussian(6000, 64, seed=20)
    users = clustered_gaussian(2048, 64, n_clusters=16, seed=22)

    print("building HNSW item index (inner-product metric) ...")
    index = HNSWIndex(
        items,
        HNSWParams(M=12, ef_construction=64),
        metric=DistanceMetric.INNER_PRODUCT,
    )
    system = NDSearch(index=index, config=NDSearchConfig.scaled())

    rows = []
    for batch in (64, 256, 512, 1024):
        ids, scores, sim = system.search_batch(
            users[:batch], k=20, ef=48
        )
        # Rank stage (host): re-score the retrieved candidates.
        ranked = np.argsort(scores, axis=1)
        rows.append([
            batch,
            f"{sim.sim_time_s * 1e3:.1f} ms",
            f"{sim.qps / 1e3:.1f} K",
            f"{sim.counters['page_reads'] / batch:.0f}",
            f"{sim.qps_per_watt:.0f}",
        ])
        assert ranked.shape == (batch, 20)
    print(format_table(
        ["batch", "retrieve latency", "QPS", "page reads / user", "QPS/W"],
        rows,
        title="Retrieve stage on NDSearch (top-20 candidates per user)",
    ))
    print(
        "\nLarger batches amortise the per-round scheduling work across "
        "all 64 LUN accelerators — the paper's Fig. 19 effect."
    )


if __name__ == "__main__":
    main()
