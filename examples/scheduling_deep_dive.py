"""Deep dive: what the two-level scheduling actually does.

Walks through the paper's software contributions on a real graph:
the bandwidth metric beta before/after degree-ascending BFS
reordering, the page-access-ratio improvement, the page-sharing gain
of batch-wise dynamic allocating, and a mini ablation (Fig. 16 style).

Run:  python examples/scheduling_deep_dive.py
"""

from repro.analysis.locality import page_access_ratio
from repro.analysis.reporting import format_table
from repro.ann import HNSWIndex, HNSWParams
from repro.ann.trace import remap_trace
from repro.core import NDSearch, NDSearchConfig, SchedulingFlags
from repro.core.static_scheduling import bandwidth_beta, random_bfs
from repro.data.synthetic import clustered_gaussian, split_queries


def main() -> None:
    vectors = clustered_gaussian(4000, 64, seed=31)
    queries = split_queries(vectors, 256, seed=32)
    print("building HNSW index ...")
    index = HNSWIndex(vectors, HNSWParams(M=12, ef_construction=64))
    graph = index.base_graph()
    _, _, traces = index.search_batch(queries, 10, ef=48)
    config = NDSearchConfig.scaled()

    # --- static scheduling: reordering ---------------------------------
    nd = NDSearch(index=index, config=config)
    print(format_table(
        ["labeling", "beta (Eq. 1)"],
        [
            ["construction order", f"{bandwidth_beta(graph):.0f}"],
            ["random BFS", f"{bandwidth_beta(graph, random_bfs(graph, 0)):.0f}"],
            ["degree-ascending BFS", f"{bandwidth_beta(graph, nd.order):.0f}"],
        ],
        title="Static scheduling: average vertex bandwidth",
    ))

    plain = NDSearch(
        index=index, config=config.with_flags(SchedulingFlags.bare())
    )
    ratio_before = page_access_ratio(
        [remap_trace(t, plain.new_id) for t in traces],
        plain._model.placement,
    )
    ratio_after = page_access_ratio(
        [remap_trace(t, nd.new_id) for t in traces], nd._model.placement
    )
    print(
        f"\npage-access ratio: {ratio_before:.3f} -> {ratio_after:.3f} "
        f"({100 * (1 - ratio_after / ratio_before):.0f}% fewer page senses "
        "per visited vertex)\n"
    )

    # --- ablation (Fig. 16 style) ------------------------------------------
    steps = [
        ("Bare", SchedulingFlags.bare()),
        ("re", SchedulingFlags(True, False, False, False)),
        ("re+mp", SchedulingFlags(True, True, False, False)),
        ("re+mp+da", SchedulingFlags(True, True, True, False)),
        ("re+mp+da+sp", SchedulingFlags.all_enabled()),
    ]
    rows = []
    bare_qps = None
    for label, flags in steps:
        system = NDSearch(index=index, config=config.with_flags(flags))
        sim = system.simulate_traces(traces)
        if bare_qps is None:
            bare_qps = sim.qps
        rows.append([
            label,
            f"{sim.qps / 1e3:.1f} K",
            f"{sim.counters['page_reads']}",
            f"{sim.qps / bare_qps:.2f}x",
        ])
    print(format_table(
        ["configuration", "QPS", "page reads", "vs Bare"],
        rows,
        title="Ablation of the scheduling techniques",
    ))


if __name__ == "__main__":
    main()
