"""Quickstart: build an index, wrap it in NDSearch, search a batch.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.ann import BruteForceIndex, HNSWIndex, HNSWParams, recall_at_k
from repro.core import NDSearch, NDSearchConfig
from repro.data.synthetic import clustered_gaussian, split_queries


def main() -> None:
    # 1. A synthetic embedding corpus (swap in your own (n, d) float32).
    vectors = clustered_gaussian(4000, 64, seed=7)
    queries = split_queries(vectors, 128, seed=8)

    # 2. Build a graph-traversal index (HNSW here; DiskANN/HCNNG/TOGG
    #    share the same interface).
    print("building HNSW index ...")
    index = HNSWIndex(vectors, HNSWParams(M=12, ef_construction=64))

    # 3. Deploy it on NDSearch: static scheduling reorders the graph,
    #    maps it onto the SearSSD flash array, and the searches replay
    #    through the timing simulator.
    system = NDSearch(index=index, config=NDSearchConfig.scaled())

    ids, dists, sim = system.search_batch(queries, k=10, ef=64)

    # 4. Results are ordinary top-k answers ...
    gt, _ = BruteForceIndex(vectors).search_batch(queries, 10)
    print(f"recall@10      : {recall_at_k(ids, gt):.3f}")
    print(f"first query    : ids={ids[0][:5]} dists={np.round(dists[0][:5], 3)}")

    # 5. ... plus the simulated hardware telemetry.
    print(f"simulated time : {sim.sim_time_s * 1e3:.2f} ms for {sim.batch_size} queries")
    print(f"throughput     : {sim.qps / 1e3:.1f} K queries/s")
    print(f"average power  : {sim.power_w:.1f} W  ->  {sim.qps_per_watt:.0f} QPS/W")
    print(f"NAND page reads: {sim.counters['page_reads']}")
    print(f"multi-plane ops: {sim.counters['multiplane_reads']}")
    print(
        "speculative    : "
        f"{sim.counters['speculative_hits']} hits / "
        f"{sim.counters['speculative_page_reads']} prefetched reads"
    )


if __name__ == "__main__":
    main()
