"""Online serving walkthrough: from one batch to a serving fleet.

The paper measures throughput one batch at a time; production serves
an arrival *stream*.  This walkthrough builds up the serving stack one
layer at a time, on one synthetic corpus:

1. dynamic batching vs. greedy dispatch under rising load,
2. the result cache under Zipfian query skew,
3. replicated shard scaling under overload,
4. bursty (MMPP) vs. Poisson traffic at the same mean rate,
5. partitioned corpus scaling with selective shard probing (IVF
   nprobe across devices): per-query device work vs. recall,
6. SLO-aware serving: deadline-driven batch closing + priority
   admission, and autoscaling the replica pool under overload,
7. partitioned rebalancing: hot IVF clusters migrate to cold shard
   devices under Zipfian skew, data movement priced on the device
   timelines,
8. observability: the same run traced as request/batch/stage spans
   (Chrome trace-event JSON, load in Perfetto) and summarized as
   windowed metrics time series — without changing a single outcome,
9. stateful flash: the skewed partitioned run served through a live
   FTL under every device — hot clusters wear their blocks, GC
   refresh pauses inflate the tail, migrations pay real program/erase
   (write amplification > 1).

Run:  PYTHONPATH=src python examples/online_serving.py
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.ann import BruteForceIndex, recall_at_k
from repro.core import NDSearchConfig
from repro.data.synthetic import clustered_gaussian, split_queries
from repro.serving import (
    AutoscalePolicy,
    BatchPolicy,
    FlashConfig,
    MMPPArrivals,
    PoissonArrivals,
    QueryStream,
    RebalancePolicy,
    ServingConfig,
    ServingFrontend,
    build_router,
)
from repro.serving.sharding import PARTITIONED

CORPUS, DIM, POOL, REQUESTS, K = 1500, 24, 192, 600, 10
SEED = 17


def serve(
    router, rate, *, mode="batch", zipf=0.0, cache=0, arrivals="poisson",
    nprobe=None,
):
    process = (
        PoissonArrivals(rate) if arrivals == "poisson" else MMPPArrivals(rate)
    )
    stream = QueryStream(
        process,
        pool_size=POOL,
        n_requests=REQUESTS,
        k=K,
        zipf_exponent=zipf,
        seed=SEED,
    )
    frontend = ServingFrontend(
        router,
        ServingConfig(
            policy=BatchPolicy(max_batch_size=32, max_wait_s=2e-3, mode=mode),
            cache_capacity=cache,
            nprobe=nprobe,
        ),
    )
    report = frontend.run(stream.generate(), serve.pool)
    return report


def fmt(report, label):
    return [
        label,
        f"{report.qps:,.0f}",
        f"{report.latency_p50_s * 1e3:.2f}",
        f"{report.latency_p99_s * 1e3:.2f}",
        f"{report.mean_batch_size:.1f}",
        f"{report.cache_hit_rate:.0%}",
        f"{np.mean(report.shard_utilization):.0%}",
    ]


HEADERS = ["scenario", "QPS", "p50 ms", "p99 ms", "batch", "hits", "util"]


def main() -> None:
    print(__doc__)
    vectors = clustered_gaussian(CORPUS, DIM, seed=SEED)
    serve.pool = split_queries(vectors, POOL, seed=SEED + 1)
    config = NDSearchConfig.scaled()

    print("building device pools (1x and 4x replicated) ...\n")
    solo = build_router(vectors, num_shards=1, config=config)
    fleet = build_router(vectors, num_shards=4, config=config)

    # 1. Batching vs greedy under load: batching holds the tail.
    rows = []
    for rate in (500.0, 10000.0):
        rows.append(fmt(serve(solo, rate, mode="greedy"), f"greedy @ {rate:g}"))
        rows.append(fmt(serve(solo, rate, mode="batch"), f"batch  @ {rate:g}"))
    print(format_table(HEADERS, rows, title="1. dynamic batching vs greedy (1 shard)"))

    # 2. Query skew + LRU cache: repeats answered at host latency.
    rows = [
        fmt(serve(solo, 2000.0, zipf=0.0, cache=256), "uniform + cache"),
        fmt(serve(solo, 2000.0, zipf=1.1, cache=0), "zipf 1.1, no cache"),
        fmt(serve(solo, 2000.0, zipf=1.1, cache=256), "zipf 1.1 + cache"),
    ]
    print(format_table(HEADERS, rows, title="2. result cache under query skew"))

    # 3. Shard scaling under overload.
    rows = [
        fmt(serve(solo, 10000.0), "1 shard @ 10k"),
        fmt(serve(fleet, 10000.0), "4 shards @ 10k"),
    ]
    print(format_table(HEADERS, rows, title="3. replicated shard scaling"))

    # 4. Burstiness: same mean rate, heavier tail.
    rows = [
        fmt(serve(solo, 2000.0, arrivals="poisson"), "poisson @ 2k"),
        fmt(serve(solo, 2000.0, arrivals="mmpp"), "mmpp    @ 2k"),
    ]
    print(format_table(HEADERS, rows, title="4. bursty vs poisson arrivals"))

    # 5. Partitioned corpus scaling: broadcast vs selective probing.
    # Each device stores 1/4 of the corpus; selective probing routes a
    # query only to the shards whose k-means centroids are nearest —
    # IVF nprobe lifted to the device pool.
    print("building partitioned pool (4 shards, k-means split) ...\n")
    parts = build_router(
        vectors, num_shards=4, config=config, mode=PARTITIONED, seed=SEED
    )
    gt, _ = BruteForceIndex(vectors).search_batch(serve.pool, K)
    rows = []
    for nprobe in (None, 1, 2, 4):
        if nprobe is None:
            ids, _, _ = parts.search_all(serve.pool, K)
        else:
            ids, _, _ = parts.search_probed(serve.pool, K, nprobe)
        report = serve(parts, 2000.0, nprobe=nprobe)
        label = "broadcast" if nprobe is None else f"nprobe={nprobe}"
        rows.append(
            fmt(report, label)
            + [f"{report.mean_probes_per_query:.1f}",
               f"{recall_at_k(ids, gt, K):.3f}"]
        )
    print(
        format_table(
            HEADERS + ["probes/q", "recall"],
            rows,
            title="5. partitioned + selective shard probing (4 shards)",
        )
    )

    # 6. SLO-aware serving: deadlines drive batch closing, priorities
    # drive shedding, and the replica pool scales itself.
    print("6a. slo policy vs fixed max-wait (2 ms high-priority deadline)\n")

    def serve_slo(mode, margin=0.0):
        stream = QueryStream(
            PoissonArrivals(4000.0), pool_size=POOL, n_requests=REQUESTS,
            k=K, zipf_exponent=0.0, seed=SEED, priorities=(0, 1),
            priority_weights=(0.75, 0.25), slo_s={1: 2e-3, 0: 8e-3},
        )
        frontend = ServingFrontend(
            solo,
            ServingConfig(
                policy=BatchPolicy(
                    max_batch_size=32, max_wait_s=20e-3, mode=mode,
                    slo_margin_s=margin,
                ),
                cache_capacity=0,
                coalesce=False,
            ),
        )
        return frontend.run(stream.generate(), serve.pool)

    rows = []
    for label, report in (
        ("max-wait 20ms", serve_slo("batch")),
        ("slo policy", serve_slo("slo", margin=3e-4)),
    ):
        rows.append(
            [
                label,
                f"{report.deadline_miss_rate:.1%}",
                f"{report.priority_stats[1]['attainment']:.1%}",
                f"{report.goodput_qps:,.0f}",
                f"{report.mean_batch_size:.1f}",
                f"{report.latency_p99_s * 1e3:.2f}",
            ]
        )
    print(
        format_table(
            ["policy", "miss rate", "hi attain", "goodput", "batch", "p99 ms"],
            rows,
            title="6a. deadline-driven closes: the slo policy adapts the wait",
        )
    )

    print("6b. autoscaling under overload (25k QPS at 1 replica's capacity)\n")
    rows = []
    for label, autoscale in (
        ("static x1", None),
        ("autoscaled 1-4", AutoscalePolicy(
            min_replicas=1, max_replicas=4, interval_s=2e-3,
            high_utilization=0.7, high_queue_depth=8.0,
        )),
    ):
        pool_router = build_router(vectors, num_shards=1, config=config)
        stream = QueryStream(
            PoissonArrivals(25000.0), pool_size=POOL, n_requests=REQUESTS,
            k=K, zipf_exponent=0.0, seed=SEED,
        )
        frontend = ServingFrontend(
            pool_router,
            ServingConfig(
                policy=BatchPolicy(max_batch_size=4, max_wait_s=2e-3),
                cache_capacity=0,
                coalesce=False,
                admission_capacity=48,
                autoscale=autoscale,
            ),
        )
        report = frontend.run(stream.generate(), serve.pool)
        rows.append(
            [
                label,
                f"{report.qps:,.0f}",
                f"{report.shed_rate:.1%}",
                f"{report.latency_p99_s * 1e3:.2f}",
                len(report.scale_events),
                report.replicas_final,
            ]
        )
    print(
        format_table(
            ["pool", "QPS", "shed", "p99 ms", "events", "replicas"],
            rows,
            title="6b. the autoscaler grows the pool instead of shedding",
        )
    )

    # 7. Partitioned rebalancing: under skewed popularity the devices
    # owning the hot IVF clusters saturate; migrating clusters to cold
    # devices (data movement booked on both device timelines, routing
    # flipped atomically when it lands) levels the pool.
    print("7. rebalancing a partitioned pool under Zipfian skew\n")
    rows = []
    for label, policy in (
        ("static placement", None),
        ("rebalanced", RebalancePolicy(
            interval_s=2e-3, skew_threshold=0.25, migration_gbps=1.0,
        )),
    ):
        part_router = build_router(
            vectors, num_shards=4, config=config, mode=PARTITIONED,
            seed=SEED, clusters_per_shard=2,
        )
        stream = QueryStream(
            PoissonArrivals(16000.0), pool_size=POOL, n_requests=REQUESTS,
            k=K, zipf_exponent=1.2, seed=SEED, slo_s=4e-3,
        )
        frontend = ServingFrontend(
            part_router,
            ServingConfig(
                policy=BatchPolicy(max_batch_size=16, max_wait_s=2e-3),
                cache_capacity=0,
                coalesce=False,
                nprobe=1,
                rebalance=policy,
            ),
        )
        report = frontend.run(stream.generate(), serve.pool)
        rows.append(
            [
                label,
                f"{report.goodput_qps:,.0f}",
                f"{report.latency_p99_s * 1e3:.2f}",
                f"{max(report.shard_utilization):.0%}",
                " ".join(f"{u:.0%}" for u in report.shard_utilization),
                len(report.rebalance_events),
            ]
        )
    print(
        format_table(
            ["placement", "goodput", "p99 ms", "hottest", "per-device util",
             "migrations"],
            rows,
            title="7. hot clusters migrate to cold devices (8 clusters / 4 devices)",
        )
    )

    # ---- 8. observability: spans + windowed metrics, zero perturbation --
    # The bursty single-shard run from section 4 again, now with the
    # span tracer and 2 ms metrics windows attached.  The digests the
    # parity suite pins prove instrumentation is observe-only; here we
    # just show the two runs agree and what the trace contains.
    import json
    import tempfile

    from repro.obs import SpanTracer

    plain = serve(build_router(vectors, num_shards=1, config=config),
                  12000.0, arrivals="mmpp")
    tracer = SpanTracer()
    stream = QueryStream(
        MMPPArrivals(12000.0), pool_size=POOL, n_requests=REQUESTS, k=K,
        zipf_exponent=0.0, seed=SEED,
    )
    frontend = ServingFrontend(
        build_router(vectors, num_shards=1, config=config),
        ServingConfig(
            policy=BatchPolicy(max_batch_size=32, max_wait_s=2e-3),
            cache_capacity=0,
            metrics_window_s=2e-3,
        ),
        tracer=tracer,
    )
    traced = frontend.run(stream.generate(), serve.pool)
    assert traced.qps == plain.qps and traced.latency_p99_s == plain.latency_p99_s

    trace_path = tempfile.gettempdir() + "/online_serving_trace.json"
    tracer.write(trace_path)
    phases = {}
    for event in tracer.events():
        phases[event["ph"]] = phases.get(event["ph"], 0) + 1
    print(
        f"\n8. traced rerun of the bursty run: identical QPS/p99 "
        f"({traced.qps:,.0f} / {traced.latency_p99_s * 1e3:.2f} ms), "
        f"{len(tracer)} trace events -> {trace_path}\n"
        f"   (open in https://ui.perfetto.dev; phases: "
        + ", ".join(f"{k}={v}" for k, v in sorted(phases.items()))
        + ")"
    )
    busiest = max(
        traced.timeseries["windows"],
        key=lambda w: w["counters"]["completions"],
    )
    kernel_counts = {
        key.removeprefix("loop_events_"): int(value)
        for key, value in traced.counters.items()
        if key.startswith("loop_events_") and key != "loop_events_total"
    }
    print(
        f"   windowed metrics: {len(traced.timeseries['windows'])} x "
        f"{traced.timeseries['window_s'] * 1e3:g} ms windows; busiest "
        f"window [{busiest['start_s'] * 1e3:.0f}, "
        f"{busiest['end_s'] * 1e3:.0f}) ms served "
        f"{busiest['counters']['completions']:.0f} requests at "
        f"{busiest['utilization']['shard0']:.0%} device utilization\n"
        f"   kernel event mix: {json.dumps(kernel_counts, sort_keys=True)}"
    )

    # ---- 9. stateful flash: the storage pays for its reads --------------
    # The section-7 skewed partitioned run again, with and without a
    # live FTL + ECC under every device (the threshold scaled down so
    # refreshes fire at walkthrough volumes).  Watch three things: the
    # p99 gap is GC pauses queuing behind queries; per-cluster erase
    # counts follow per-cluster read counts (hot data wears its blocks);
    # and write amplification > 1 is refresh relocation traffic.
    print("9. stateful flash: wear-out under Zipfian skew\n")
    rows = []
    reports = {}
    for label, flash in (
        ("ideal storage", None),
        ("stateful flash", FlashConfig(
            read_disturb_threshold=200, ecc_hard_failure_prob=0.05,
        )),
    ):
        part_router = build_router(
            vectors, num_shards=4, config=config, mode=PARTITIONED,
            seed=SEED, clusters_per_shard=2,
        )
        stream = QueryStream(
            PoissonArrivals(16000.0), pool_size=POOL, n_requests=REQUESTS,
            k=K, zipf_exponent=1.2, seed=SEED, slo_s=4e-3,
        )
        frontend = ServingFrontend(
            part_router,
            ServingConfig(
                policy=BatchPolicy(max_batch_size=16, max_wait_s=2e-3),
                cache_capacity=0,
                coalesce=False,
                nprobe=1,
                flash=flash,
            ),
        )
        reports[label] = frontend.run(stream.generate(), serve.pool)
        summary = reports[label].flash
        rows.append(
            [
                label,
                f"{reports[label].qps:,.0f}",
                f"{reports[label].latency_p99_s * 1e3:.2f}",
                summary["refreshes"] if summary else "-",
                f"{summary['total_erases']:.0f}" if summary else "-",
                f"{summary['write_amplification']:.2f}" if summary else "-",
                summary["ecc_soft_decodes"] if summary else "-",
            ]
        )
    print(
        format_table(
            ["storage", "QPS", "p99 ms", "refreshes", "erases", "WA",
             "ECC soft"],
            rows,
            title="9. ideal vs stateful flash (same stream, same placement)",
        )
    )
    wear = reports["stateful flash"].flash
    reads = wear["cluster_page_reads"]
    erases = wear["cluster_erases"]
    print("   per-cluster wear (reads drive erases):")
    for cluster in sorted(reads, key=int):
        print(
            f"     cluster {cluster}: {reads[cluster]:>6} page reads, "
            f"{erases.get(cluster, 0)} block erases"
        )

    print(
        "\nTakeaways: batching rides the Fig. 19 batch-size curve under\n"
        "queueing; skew + LRU turns repeat traffic into host-latency hits;\n"
        "replicas scale sustained QPS; burstiness is a tail-latency tax;\n"
        "selective probing buys back most of the partitioned fan-out cost\n"
        "(probes/query ~ nprobe/shards) at a graceful recall discount;\n"
        "deadline-driven closes batch exactly as much as each deadline\n"
        "allows; the autoscaler turns shed traffic into served traffic by\n"
        "growing the replica pool when utilization or queue depth spike;\n"
        "and a partitioned pool survives skew by moving hot clusters to\n"
        "cold devices while serving continues; the whole run can be\n"
        "traced span-by-span and summarized window-by-window without\n"
        "perturbing any of it; and putting real flash under the devices\n"
        "shows the storage itself taxing the tail — hot data disturbs\n"
        "its blocks into GC refreshes, and every relocation is write\n"
        "amplification the host never asked for."
    )


if __name__ == "__main__":
    main()
