"""Walkthrough of the functional hardware path (Algorithm 1 end-to-end).

Programs a graph's vectors into simulated NAND pages, runs a batch of
queries through the Vgenerator -> Allocator -> SiN -> FPGA pipeline,
verifies the answers are bit-identical to a host-side search, shows a
``<SearchPage>`` instruction encoding, and performs an FTL block
refresh mid-stream to demonstrate that LUNCSR tracks the relocation.

Run:  python examples/functional_hardware_walkthrough.py
"""

import numpy as np

from repro.ann import HNSWIndex, HNSWParams
from repro.ann.search import greedy_beam_search, top_k_from_results
from repro.core import NDSearch, NDSearchConfig
from repro.data.synthetic import clustered_gaussian, split_queries
from repro.flash.commands import DistanceType, SearchPage, encode_dim


def main() -> None:
    vectors = clustered_gaussian(800, 32, seed=41)
    queries = split_queries(vectors, 8, seed=42)
    index = HNSWIndex(vectors, HNSWParams(M=8, ef_construction=32))
    system = NDSearch(index=index, config=NDSearchConfig.scaled())
    device = system.device()  # builds the functional SearSSD

    g = device.config.geometry
    print(
        f"SearSSD: {g.channels} channels x {g.chips_per_channel} chips x "
        f"{g.luns_per_chip} LUNs x {g.planes_per_lun} planes, "
        f"{g.page_size // 1024} KB pages -> {g.total_luns} LUN accelerators"
    )

    # --- the <SearchPage> instruction ------------------------------------
    # The instruction carries the ONFI *row* address; the byte offset
    # within the page travels separately via <ChangeReadColumn>.
    import dataclasses

    address = device.luncsr.physical_address(5)
    row_address = dataclasses.replace(address, byte=0)
    cmd = SearchPage(
        address=row_address,
        distance=DistanceType.EUCLIDEAN,
        fv_dim_code=encode_dim(32),
        fv_prec_code=3,
    )
    word = cmd.encode(g)
    print(
        f"\n<SearchPage> for vertex 5 at {address}: 0x{word:010x} "
        f"(column address: {address.column_address()})"
    )
    assert SearchPage.decode(word, g) == cmd

    # --- run Algorithm 1 through the hardware ------------------------------
    ids_hw, dists_hw = system.search_batch_functional(queries, k=5, ef=24)
    graph = system.graph
    ids_host = []
    for q in queries:
        results = greedy_beam_search(
            graph.vectors, graph.neighbors, q, [graph.entry_point], 24,
            graph.metric,
        )
        top, _ = top_k_from_results(results, 5)
        ids_host.append(system.order[top])
    match = np.array_equal(ids_hw, np.stack(ids_host))
    print(f"\nhardware path == host search: {match}")
    assert match

    counters = device.total_counters()
    print(f"page reads          : {counters['page_reads']}")
    print(f"page-buffer hits    : {counters['page_buffer_hits']}")
    print(f"multi-plane ops     : {counters['multiplane_ops']}")
    print(f"distances computed  : {counters['distance_computations']}")
    print(f"bitonic elements    : {counters['sorted_elements']}")

    # --- FTL refresh during operation ------------------------------------------
    v = 7
    lun, plane = device.luncsr.lun_of(v), int(device.luncsr.plane[v])
    before = int(device.luncsr.blk[v])
    device.ssd.refresh(lun, plane, before)
    after = int(device.luncsr.blk[v])
    print(f"\nFTL refresh: vertex {v} block {before} -> {after} (LUNCSR updated)")
    ids2, _ = system.search_batch_functional(queries, k=5, ef=24)
    print(f"results unchanged after refresh: {np.array_equal(ids_hw, ids2)}")
    assert np.array_equal(ids_hw, ids2)


if __name__ == "__main__":
    main()
