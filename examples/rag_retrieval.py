"""RAG retrieval: passage search for LLM context assembly.

The paper's motivating application: retrieval-augmented generation
fetches the top-k most relevant passage embeddings for every prompt.
The corpus (here a scaled stand-in for a multi-hundred-GB embedding
store) exceeds host memory, so a conventional deployment pays SSD I/O
on every hop of the graph traversal — NDSearch moves the traversal
into the SSD instead.

Run:  python examples/rag_retrieval.py
"""

import numpy as np

from repro.ann import DiskANNIndex, DiskANNParams
from repro.analysis.reporting import format_table
from repro.baselines import CPUModel, GPUModel
from repro.baselines.common import DatasetProfile
from repro.core import NDSearch, NDSearchConfig
from repro.data.synthetic import split_queries, unit_normalized


def main() -> None:
    # Passage embeddings: unit-normalized, like sentence-transformer
    # output; DiskANN is the SSD-resident index DiskANN-style RAG uses.
    corpus = unit_normalized(8000, 96, seed=11)
    prompts = split_queries(corpus, 256, seed=12)

    print("building DiskANN (Vamana) index over the passage store ...")
    index = DiskANNIndex(corpus, DiskANNParams(R=24, L=64, alpha=1.2))

    config = NDSearchConfig.scaled()
    system = NDSearch(index=index, config=config)
    ids, dists, nd = system.search_batch(prompts, k=5, ef=64)
    print(f"retrieved 5 passages per prompt; example: prompt 0 -> {ids[0]}")

    # Replay the same traces on host baselines for comparison.
    _, _, traces = index.search_batch(prompts, 5, ef=64)
    profile = DatasetProfile(
        name="rag-passages",
        num_vectors=corpus.shape[0],
        dim=corpus.shape[1],
        vector_bytes=corpus.shape[1] * 4,
        footprint_bytes=corpus.shape[0] * (corpus.shape[1] * 4 + 64),
    )
    cpu = CPUModel(timing=config.timing, host=config.host).run_batch(
        traces, profile, algorithm="diskann",
        cached_vertices=index.hot_vertices(0.05),
    )
    gpu = GPUModel(timing=config.timing, host=config.host).run_batch(
        traces, profile, algorithm="diskann"
    )

    rows = []
    for label, r in (("CPU + SSD", cpu), ("GPU (sharded)", gpu),
                     ("NDSearch", nd)):
        rows.append([
            label,
            f"{r.sim_time_s * 1e3:.1f} ms",
            f"{r.qps / 1e3:.1f} K",
            f"{1e6 / max(r.qps, 1):.0f} us",
            f"{r.qps_per_watt:.0f}",
        ])
    print()
    print(format_table(
        ["platform", "batch latency", "QPS", "per-prompt latency", "QPS/W"],
        rows,
        title="RAG retrieval: 256 prompts, top-5 passages",
    ))
    print(
        f"\nNDSearch speedup: {nd.speedup_over(cpu):.1f}x over CPU, "
        f"{nd.speedup_over(gpu):.1f}x over GPU"
    )


if __name__ == "__main__":
    main()
