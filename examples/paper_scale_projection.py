"""Project a workload onto the paper-scale SearSSD configuration.

The benchmarks run the scaled 64-LUN machine; this example deploys the
same workload on the full 512 GB / 256-LUN configuration of the paper
(Section IV-C) and contrasts the two — showing how the extra LUN-level
parallelism absorbs larger batches, which is the paper's Fig. 19
story at full scale.

Run:  python examples/paper_scale_projection.py
"""

from repro.analysis.reporting import format_table
from repro.ann import HNSWIndex, HNSWParams
from repro.core import NDSearch, NDSearchConfig
from repro.data.synthetic import clustered_gaussian, split_queries


def main() -> None:
    vectors = clustered_gaussian(6000, 128, seed=51)
    queries = split_queries(vectors, 1024, seed=52)
    print("building HNSW index ...")
    index = HNSWIndex(vectors, HNSWParams(M=12, ef_construction=64))
    _, _, traces = index.search_batch(queries, 10, ef=64)

    scaled = NDSearch(index=index, config=NDSearchConfig.scaled())
    paper = NDSearch(index=index, config=NDSearchConfig.paper())

    rows = []
    for batch in (128, 512, 1024):
        sim_s = scaled.simulate_traces(traces[:batch])
        sim_p = paper.simulate_traces(traces[:batch])
        rows.append([
            batch,
            f"{sim_s.qps / 1e3:.1f}K",
            f"{sim_p.qps / 1e3:.1f}K",
            f"{sim_p.qps / sim_s.qps:.2f}x",
        ])
    print(format_table(
        ["batch", "scaled (64 LUNs)", "paper (256 LUNs)", "paper / scaled"],
        rows,
        title="Same workload on both machine configurations",
    ))
    print(
        "\nThe 256-LUN machine pulls ahead as the batch grows: more "
        "accelerators to spread each round's page senses across.  Its "
        "query-queue capacity is 256 x 16 = "
        f"{NDSearchConfig.paper().max_batch_capacity} queries — the "
        "paper's Fig. 19 roll-off point."
    )


if __name__ == "__main__":
    main()
